"""``python -m repro matrix`` — run a (scenario × planner) grid in parallel.

The scenario axis comes from the family registry in
:mod:`repro.workloads.datasets`; the planner axis defaults to the paper's
five.  Finished cells stream into ``<results-dir>/<matrix-name>/`` and a
re-run skips everything already on disk::

    python -m repro matrix --family table2 --workers 4 --results-dir results
    python -m repro matrix --family fleet-ladder --planners NTP,EATP --scale 0.3
    python -m repro matrix --family obstructed --workers 2 --fresh
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..planners import PLANNERS
from ..workloads.datasets import SCENARIO_FAMILIES, scenario_family
from .harness import DEFAULT_PLANNERS, plan_cells, run_matrix
from .reporting import format_table
from .store import ResultStore, open_store


def parse_planners(raw: str) -> tuple:
    """``--planners`` parser: split, canonicalise, validate *early*.

    Names are matched case-insensitively against the planner registry and
    returned in canonical casing; an unknown name fails here with the
    valid choices listed, instead of as a ``KeyError`` minutes later
    inside a worker process (possibly after the known-good cells already
    ran).
    """
    canonical = {name.upper(): name for name in PLANNERS}
    chosen = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        name = canonical.get(token.upper())
        if name is None:
            raise ConfigurationError(
                f"unknown planner {token!r} in --planners; "
                f"choose from {sorted(PLANNERS)}")
        if name not in chosen:
            chosen.append(name)
    if not chosen:
        raise ConfigurationError(
            f"--planners selected nothing (got {raw!r}); "
            f"choose from {sorted(PLANNERS)}")
    return tuple(chosen)


def render_matrix_summary(payloads: Dict[str, dict], title: str) -> str:
    """One row per scenario, one makespan column per planner."""
    scenarios: List[str] = []
    planners: List[str] = []
    makespans: Dict[str, Dict[str, int]] = {}
    for payload in payloads.values():
        scenario, planner = payload["scenario"], payload["planner"]
        if scenario not in scenarios:
            scenarios.append(scenario)
        if planner not in planners:
            planners.append(planner)
        makespans.setdefault(scenario, {})[planner] = (
            payload["result"]["metrics"]["makespan"])
    rows = []
    for scenario in scenarios:
        row = [scenario]
        for planner in planners:
            value = makespans[scenario].get(planner)
            row.append(f"{value:,}" if value is not None else "-")
        rows.append(row)
    return format_table(["Scenario"] + planners, rows, title=title)


def render_slowest_cells(payloads: Dict[str, dict], top: int = 5) -> str:
    """The ``top`` slowest cells by wall-clock — the engine-regression
    tripwire a sweep prints without anyone opening the results dir.

    Cells stored by releases that predate per-cell timing (no ``wall_s``)
    are skipped; cached cells report the wall-clock of the run that
    produced them.
    """
    timed = [(payload["wall_s"], cell_id)
             for cell_id, payload in payloads.items()
             if payload.get("wall_s") is not None]
    if not timed:
        return "(no per-cell wall-clock recorded)"
    timed.sort(reverse=True)
    rows = [[cell_id, f"{wall:.2f}s"] for wall, cell_id in timed[:top]]
    return format_table(["Slowest cells", "Wall"], rows,
                        title=f"Per-cell wall-clock (top {min(top, len(timed))} "
                              f"of {len(timed)})")


def render_fallback_summary(payloads: Dict[str, dict]) -> str:
    """Aggregate fallback-tier counts — the windowed pipeline's pulse.

    Shows at a glance whether (and how often) any cell of the sweep left
    the full-search tier; all-zero means the run was byte-identical to
    the pre-pipeline planner behaviour.
    """
    totals = {"windowed_legs": 0, "wait_legs": 0, "horizon_replans": 0}
    cells_with = 0
    for payload in payloads.values():
        fallback = payload["result"]["metrics"].get("fallback", {})
        if any(fallback.get(key, 0) for key in totals):
            cells_with += 1
        for key in totals:
            totals[key] += fallback.get(key, 0)
    if not cells_with:
        return ("fallback tiers: none (every leg completed at the "
                "free-flow or full tier)")
    return (f"fallback tiers: {totals['windowed_legs']} windowed legs, "
            f"{totals['wait_legs']} wait legs, "
            f"{totals['horizon_replans']} horizon replans "
            f"across {cells_with} cell(s)")


def _fmt_bytes(n_bytes: float) -> str:
    """Human-readable byte count (1 decimal from KB up)."""
    value = float(n_bytes)
    for unit in ("B", "KB", "MB"):
        if value < 1024:
            return (f"{int(value)} B" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024
    return f"{value:.1f} GB"


def render_fastpath_summary(payloads: Dict[str, dict]) -> str:
    """Aggregate tier-0 fast-path counts — the free-flow tier's pulse.

    The complement of :func:`render_fallback_summary`: where fallback
    tiers fire on *congestion*, the fast path fires on its absence, and a
    healthy sweep shows a high hit rate.  Counters come from the
    serialised run metrics (``metrics.fastpath``), so cells stored by
    releases that predate the fast path read all-zero and are reported as
    carrying no attempts.

    Per-scenario peak planner memory rides along (one line per rung):
    the fleet ladder's large rungs exist precisely because the paper's
    excluded regime was a *memory* cliff as much as a time one, so the
    sweep surfaces the Fig. 12 peak without anyone opening the results
    directory.
    """
    totals = {"free_flow_legs": 0, "audit_rejects": 0, "misses": 0}
    scenarios: List[str] = []
    peaks: Dict[str, List[str]] = {}
    for payload in payloads.values():
        fastpath = payload["result"]["metrics"].get("fastpath", {})
        for key in totals:
            totals[key] += fastpath.get(key, 0)
        # Cells stored by earlier releases (or minimal test payloads)
        # may carry neither scenario/planner labels nor a memory metric.
        scenario = payload.get("scenario")
        peak = payload["result"]["metrics"].get("peak_memory_bytes")
        if scenario is not None and peak is not None:
            if scenario not in scenarios:
                scenarios.append(scenario)
            peaks.setdefault(scenario, []).append(
                f"{payload.get('planner', '?')} {_fmt_bytes(peak)}")
    attempts = sum(totals.values())
    if not attempts:
        lines = ["fast path: no tier-0 attempts recorded"]
    else:
        lines = [f"fast path: {totals['free_flow_legs']}/{attempts} legs "
                 f"free-flow ({totals['free_flow_legs'] / attempts:.0%} hit "
                 f"rate; {totals['audit_rejects']} audit rejects, "
                 f"{totals['misses']} misses)"]
    for scenario in scenarios:
        lines.append(f"  peak memory [{scenario}]: "
                     + ", ".join(peaks[scenario]))
    return "\n".join(lines)


def render_batch_summary(payloads: Dict[str, dict]) -> str:
    """Aggregate batched-wake counts — the batch commit loop's pulse.

    All-zero (and a one-line "none") below the paper-scale gate; at
    paper scale the conflict/leg ratio tells whether optimistic commits
    are holding up.
    """
    totals = {"batched_wakes": 0, "batched_legs": 0, "batch_conflicts": 0,
              "rescued_legs": 0}
    for payload in payloads.values():
        batch = payload["result"]["metrics"].get("batch", {})
        for key in totals:
            totals[key] += batch.get(key, 0)
    if not (totals["batched_wakes"] or totals["rescued_legs"]):
        return "batched wakes: none (all wakes planned sequentially)"
    return (f"batched wakes: {totals['batched_legs']} legs across "
            f"{totals['batched_wakes']} wakes, "
            f"{totals['batch_conflicts']} commit conflicts replanned; "
            f"{totals['rescued_legs']} conflicted descents rescued by "
            f"wait-following")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default="table2",
                        choices=sorted(SCENARIO_FAMILIES),
                        help="scenario family to sweep (registry name)")
    parser.add_argument("--planners", default=",".join(DEFAULT_PLANNERS),
                        help="comma-separated planner names "
                             "(case-insensitive; validated before any "
                             "cell runs) — rerun a single-planner slice "
                             "with e.g. --planners EATP")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scenario scale multiplier")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = serial)")
    parser.add_argument("--results-dir", default=None,
                        help="root directory for per-cell JSON results; "
                             "cells already on disk are not re-run")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore (delete) cached cells before running")
    args = parser.parse_args(argv)

    scenarios = scenario_family(args.family, scale=args.scale)
    planners = parse_planners(args.planners)
    cells = plan_cells(scenarios, planners)
    matrix_name = f"{args.family}-s{args.scale:g}"
    store: Optional[ResultStore] = open_store(args.results_dir, matrix_name)
    if store is not None and args.fresh:
        for cell in cells:
            store.delete(cell.cell_id)

    def progress(cell_id: str, status: str) -> None:
        print(f"  [{status:>6}] {cell_id}", file=sys.stderr, flush=True)

    started = time.perf_counter()
    payloads = run_matrix(cells, workers=args.workers, store=store,
                          progress=progress)
    elapsed = time.perf_counter() - started

    title = (f"Matrix {matrix_name}: {len(cells)} cells, "
             f"{args.workers or 1} worker(s), {elapsed:.1f}s")
    print(render_matrix_summary(payloads, title))
    print(render_slowest_cells(payloads))
    print(render_fallback_summary(payloads))
    print(render_fastpath_summary(payloads))
    print(render_batch_summary(payloads))
    if store is not None:
        print(f"cells stored under {store.root}/")


if __name__ == "__main__":
    main()
