"""Ablations A1–A4: the design knobs DESIGN.md calls out.

* **A1 — δ sweep** (Sec. V-D): the paper observes δ < 0.4 trains
  effectively; the sweep shows makespan across the bootstrap range.
* **A2 — L sweep** (Sec. VI-B): cache-aid threshold vs planning time and
  cache hit rate.
* **A3 — K sweep** (Sec. VI-A): flip-requesting breadth vs makespan and
  selection time.
* **A4 — reservation swap**: EATP planning with the CDT versus with the
  dense spatiotemporal graph, isolating the Fig. 12 memory claim.

Run as a module::

    python -m repro.experiments.ablations [--which a1|a2|a3|a4|all]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import PlannerConfig, QLearningConfig
from ..pathfinding.reservation import ReservationTable
from ..pathfinding.spatiotemporal_graph import SpatiotemporalGraph
from ..planners.eatp import EfficientAdaptiveTaskPlanner
from ..sim.engine import Simulation
from ..workloads.datasets import make_syn_a
from .harness import MatrixCell, run_matrix
from .reporting import format_table


@dataclass(frozen=True)
class AblationPoint:
    """One sweep point: the knob value and the metrics it produced."""

    value: float
    makespan: int
    selection_seconds: float
    planning_seconds: float
    peak_memory_kib: float
    extra: Dict[str, float]


def _config_sweep(planner: str, values: Sequence[float],
                  make_config, scale: float, knob: str,
                  workers: int = 0) -> List[AblationPoint]:
    """Run one planner on Syn-A once per knob value, through the matrix."""
    scenario = make_syn_a(scale)
    cells = [MatrixCell(scenario=scenario, planner=planner,
                        planner_config=make_config(value),
                        label=f"{planner}-{knob}={value:g}")
             for value in values]
    payloads = run_matrix(cells, workers=workers)
    points = []
    for value, cell in zip(values, cells):
        m = payloads[cell.cell_id]["result"]["metrics"]
        points.append(AblationPoint(
            value=value, makespan=m["makespan"],
            selection_seconds=m["selection_seconds"],
            planning_seconds=m["planning_seconds"],
            peak_memory_kib=m["peak_memory_bytes"] / 1024, extra={}))
    return points


def sweep_delta(values: Sequence[float] = (0.0, 0.1, 0.2, 0.4, 0.8, 1.0),
                scale: float = 1.0, workers: int = 0) -> List[AblationPoint]:
    """A1: bootstrap degree δ on Syn-A with ATP."""
    return _config_sweep(
        "ATP", values,
        lambda delta: PlannerConfig(qlearning=QLearningConfig(delta=delta)),
        scale, knob="delta", workers=workers)


def sweep_cache_threshold(values: Sequence[int] = (0, 4, 8, 12, 20),
                          scale: float = 1.0) -> List[AblationPoint]:
    """A2: cache-aid threshold L on Syn-A with EATP."""
    points = []
    for threshold in values:
        config = PlannerConfig(cache_threshold=threshold)
        scenario = make_syn_a(scale)
        state, items = scenario.build()
        planner = EfficientAdaptiveTaskPlanner(state, config)
        m = Simulation(state, planner, items).run().metrics
        legs = max(planner.stats.legs_planned, 1)
        points.append(AblationPoint(
            value=threshold, makespan=m.makespan,
            selection_seconds=m.selection_seconds,
            planning_seconds=m.planning_seconds,
            peak_memory_kib=m.peak_memory_bytes / 1024,
            extra={"cache_finish_rate":
                   planner.stats.cache_finished_legs / legs}))
    return points


def sweep_knn(values: Sequence[int] = (1, 3, 5, 8, 16),
              scale: float = 1.0, workers: int = 0) -> List[AblationPoint]:
    """A3: flip-requesting breadth K on Syn-A with EATP."""
    return _config_sweep(
        "EATP", values, lambda k: PlannerConfig(knn_k=int(k)),
        scale, knob="K", workers=workers)


class _EatpOnStGraph(EfficientAdaptiveTaskPlanner):
    """EATP with the dense spatiotemporal graph (A4 control arm)."""

    name = "EATP+STGraph"

    def _make_reservation(self) -> ReservationTable:
        return SpatiotemporalGraph(self.grid)


def sweep_reservation(scale: float = 1.0) -> Dict[str, AblationPoint]:
    """A4: identical EATP planning, reservation structure swapped."""
    out: Dict[str, AblationPoint] = {}
    for label, cls in (("CDT", EfficientAdaptiveTaskPlanner),
                       ("STGraph", _EatpOnStGraph)):
        scenario = make_syn_a(scale)
        state, items = scenario.build()
        planner = cls(state)
        m = Simulation(state, planner, items).run().metrics
        out[label] = AblationPoint(
            value=0.0, makespan=m.makespan,
            selection_seconds=m.selection_seconds,
            planning_seconds=m.planning_seconds,
            peak_memory_kib=m.peak_memory_bytes / 1024,
            extra={"reservation_kib":
                   planner.reservation.memory_bytes() / 1024})
    return out


def _render(points: List[AblationPoint], knob: str, title: str) -> str:
    rows = [[p.value, f"{p.makespan:,}", f"{p.selection_seconds:.3f}",
             f"{p.planning_seconds:.3f}", f"{p.peak_memory_kib:.0f}",
             " ".join(f"{k}={v:.3f}" for k, v in p.extra.items())]
            for p in points]
    return format_table([knob, "makespan", "STC/s", "PTC/s", "MC/KiB", "notes"],
                        rows, title=title)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--which", default="all",
                        choices=("a1", "a2", "a3", "a4", "all"))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the A1/A3 sweeps")
    args = parser.parse_args(argv)
    if args.which in ("a1", "all"):
        print(_render(sweep_delta(scale=args.scale, workers=args.workers),
                      "delta", "A1 — bootstrap degree sweep (ATP, Syn-A)"))
    if args.which in ("a2", "all"):
        print(_render(sweep_cache_threshold(scale=args.scale), "L",
                      "A2 — cache threshold sweep (EATP, Syn-A)"))
    if args.which in ("a3", "all"):
        print(_render(sweep_knn(scale=args.scale, workers=args.workers), "K",
                      "A3 — flip-requesting breadth sweep (EATP, Syn-A)"))
    if args.which in ("a4", "all"):
        swap = sweep_reservation(scale=args.scale)
        rows = [[label, f"{p.makespan:,}", f"{p.peak_memory_kib:.0f}",
                 f"{p.extra['reservation_kib']:.0f}"]
                for label, p in swap.items()]
        print(format_table(["reservation", "makespan", "MC/KiB",
                            "final reservation KiB"], rows,
                           title="A4 — CDT vs spatiotemporal graph (EATP)"))


if __name__ == "__main__":
    main()
