"""Experiment E1 — Table III: makespan comparison on all datasets.

Reproduces the paper's headline table: makespan of NTP, LEF, ILP, ATP and
EATP on Syn-A, Syn-B, Real-Norm and Real-Large.  As in the paper, LEF and
ILP are skipped on Real-Large (the paper reports them "too slow to
execute" there; the dashes in Table III).

The (dataset × planner) grid goes through :func:`run_matrix`, so ``--workers
N`` fans the twenty cells over N processes and ``--results-dir`` makes the
table resumable cell by cell.

Run as a module for the report::

    python -m repro.experiments.table3 [--scale S] [--workers N]
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional

from ..config import PlannerConfig
from ..workloads.datasets import all_datasets
from .harness import DEFAULT_PLANNERS, plan_cells, run_matrix
from .reporting import format_table, percent_improvement
from .store import open_store


def run_table3(scale: float = 1.0,
               planner_config: Optional[PlannerConfig] = None,
               include_slow_on_large: bool = False,
               workers: int = 0,
               results_dir: Optional[str] = None) -> Dict[str, Dict[str, int]]:
    """Compute the Table III makespans.

    Returns ``{dataset: {planner: makespan}}`` with the paper's missing
    cells absent unless ``include_slow_on_large`` is set.
    """
    datasets = all_datasets(scale)
    cells = plan_cells(datasets.values(), DEFAULT_PLANNERS, planner_config,
                       skip_slow_on=() if include_slow_on_large
                       else ("Real-Large",))
    store = open_store(results_dir, f"table3-s{scale:g}")
    payloads = run_matrix(cells, workers=workers, store=store)
    table: Dict[str, Dict[str, int]] = {name: {} for name in datasets}
    for payload in payloads.values():
        table[payload["scenario"]][payload["planner"]] = (
            payload["result"]["metrics"]["makespan"])
    return table


def render_table3(table: Dict[str, Dict[str, int]]) -> str:
    """Format the makespans in the paper's row/column layout."""
    datasets = list(table)
    rows = []
    for planner in DEFAULT_PLANNERS:
        row = [planner]
        for dataset in datasets:
            value = table[dataset].get(planner)
            row.append(f"{value:,}" if value is not None else "-")
        rows.append(row)
    best_base = []
    for dataset in datasets:
        baselines = [v for p, v in table[dataset].items()
                     if p in ("NTP", "LEF", "ILP") and v is not None]
        ours = [v for p, v in table[dataset].items()
                if p in ("ATP", "EATP") and v is not None]
        gain = percent_improvement(max(baselines), min(ours))
        best_base.append(f"{gain:.1f}%")
    rows.append(["vs worst baseline"] + best_base)
    return format_table(["Method"] + datasets, rows,
                        title="Table III — Makespan comparison")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale multiplier (1.0 = default)")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = serial)")
    parser.add_argument("--results-dir", default=None,
                        help="per-cell JSON result root (enables resume)")
    args = parser.parse_args(argv)
    print(render_table3(run_table3(scale=args.scale, workers=args.workers,
                                   results_dir=args.results_dir)))


if __name__ == "__main__":
    main()
