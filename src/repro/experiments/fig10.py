"""Experiments E2/E3 — Fig. 10: PPR and RWR over the planning procedure.

For each dataset and planner, the picker processing rate (Eq. 6) and robot
working rate (Eq. 7) are sampled at ten evenly spaced item-count
checkpoints — the x-axis of the paper's Fig. 10 — and printed as series.
Cells run through the experiment matrix, so ``--workers`` parallelises
and ``--results-dir`` resumes.

Run as a module::

    python -m repro.experiments.fig10 [--scale S] [--dataset NAME] [--workers N]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import PlannerConfig
from ..workloads.datasets import all_datasets
from .harness import DEFAULT_PLANNERS, plan_cells, run_matrix
from .reporting import format_series
from .store import open_store


@dataclass(frozen=True)
class RateSeries:
    """One planner's PPR/RWR checkpoint series on one dataset."""

    planner: str
    items: List[int]
    ppr: List[float]
    rwr: List[float]


def run_fig10(scale: float = 1.0, dataset: Optional[str] = None,
              planner_config: Optional[PlannerConfig] = None,
              workers: int = 0, results_dir: Optional[str] = None
              ) -> Dict[str, List[RateSeries]]:
    """Compute the Fig. 10 series; ``{dataset: [series per planner]}``."""
    datasets = all_datasets(scale)
    if dataset is not None:
        datasets = {dataset: datasets[dataset]}
    cells = plan_cells(datasets.values(), DEFAULT_PLANNERS, planner_config)
    store = open_store(results_dir, f"fig10-s{scale:g}")
    payloads = run_matrix(cells, workers=workers, store=store)
    out: Dict[str, List[RateSeries]] = {name: [] for name in datasets}
    for payload in payloads.values():
        checkpoints = payload["result"]["metrics"]["checkpoints"]
        out[payload["scenario"]].append(RateSeries(
            planner=payload["planner"],
            items=[c["items_processed"] for c in checkpoints],
            ppr=[c["ppr"] for c in checkpoints],
            rwr=[c["rwr"] for c in checkpoints]))
    return out


def render_fig10(data: Dict[str, List[RateSeries]]) -> str:
    """Format both rate figures as labelled series."""
    lines: List[str] = []
    for dataset, series in data.items():
        lines.append(f"Fig. 10 — PPR on {dataset}")
        for s in series:
            lines.append("  " + format_series(s.planner, s.items, s.ppr))
        lines.append(f"Fig. 10 — RWR on {dataset}")
        for s in series:
            lines.append("  " + format_series(s.planner, s.items, s.rwr))
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--dataset", default=None,
                        choices=[None, "Syn-A", "Syn-B", "Real-Norm",
                                 "Real-Large"])
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--results-dir", default=None)
    args = parser.parse_args(argv)
    print(render_fig10(run_fig10(scale=args.scale, dataset=args.dataset,
                                 workers=args.workers,
                                 results_dir=args.results_dir)))


if __name__ == "__main__":
    main()
