"""Experiments E4/E5 — Fig. 11: selection (STC) and planning (PTC) time.

Cumulative selection-step and path-finding wall-clock seconds at ten
item-count checkpoints, per planner per dataset — the paper's efficiency
figure.  Absolute values differ from the paper's Java system; the shape
claims (EATP's STC near the cheap greedy methods, EATP's PTC below
everyone) are what the regenerator demonstrates.  Cells run through the
experiment matrix (``--workers``, ``--results-dir``).

Run as a module::

    python -m repro.experiments.fig11 [--scale S] [--dataset NAME] [--workers N]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import PlannerConfig
from ..workloads.datasets import all_datasets
from .harness import DEFAULT_PLANNERS, plan_cells, run_matrix
from .reporting import format_series
from .store import open_store


@dataclass(frozen=True)
class TimeSeries:
    """One planner's cumulative STC/PTC checkpoint series."""

    planner: str
    items: List[int]
    stc_seconds: List[float]
    ptc_seconds: List[float]


def run_fig11(scale: float = 1.0, dataset: Optional[str] = None,
              planner_config: Optional[PlannerConfig] = None,
              workers: int = 0, results_dir: Optional[str] = None
              ) -> Dict[str, List[TimeSeries]]:
    """Compute the Fig. 11 series; ``{dataset: [series per planner]}``."""
    datasets = all_datasets(scale)
    if dataset is not None:
        datasets = {dataset: datasets[dataset]}
    cells = plan_cells(datasets.values(), DEFAULT_PLANNERS, planner_config)
    store = open_store(results_dir, f"fig11-s{scale:g}")
    payloads = run_matrix(cells, workers=workers, store=store)
    out: Dict[str, List[TimeSeries]] = {name: [] for name in datasets}
    for payload in payloads.values():
        checkpoints = payload["result"]["metrics"]["checkpoints"]
        out[payload["scenario"]].append(TimeSeries(
            planner=payload["planner"],
            items=[c["items_processed"] for c in checkpoints],
            stc_seconds=[c["selection_seconds"] for c in checkpoints],
            ptc_seconds=[c["planning_seconds"] for c in checkpoints]))
    return out


def render_fig11(data: Dict[str, List[TimeSeries]]) -> str:
    """Format both time figures as labelled series."""
    lines: List[str] = []
    for dataset, series in data.items():
        lines.append(f"Fig. 11 — STC on {dataset} (seconds)")
        for s in series:
            lines.append("  " + format_series(s.planner, s.items,
                                              s.stc_seconds, "{:.4f}"))
        lines.append(f"Fig. 11 — PTC on {dataset} (seconds)")
        for s in series:
            lines.append("  " + format_series(s.planner, s.items,
                                              s.ptc_seconds, "{:.3f}"))
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--dataset", default=None,
                        choices=[None, "Syn-A", "Syn-B", "Real-Norm",
                                 "Real-Large"])
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--results-dir", default=None)
    args = parser.parse_args(argv)
    print(render_fig11(run_fig11(scale=args.scale, dataset=args.dataset,
                                 workers=args.workers,
                                 results_dir=args.results_dir)))


if __name__ == "__main__":
    main()
