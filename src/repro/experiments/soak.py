"""Always-on service soak: open-ended streaming with checkpoint/restore.

Every regenerator in this package runs a *batch*: a fixed item count, a
makespan, a final table row.  A deployed rack-to-picker system has none
of those — items arrive forever and the planner must neither leak memory
nor drift.  The soak harness drives exactly that regime:

* an :class:`~repro.workloads.arrivals.ItemStream` feeds arrivals in
  chunks, always ahead of the event clock, through
  :meth:`~repro.sim.engine.Simulation.extend_items`;
* the run advances window by window (``run_until``), closing a
  :class:`~repro.sim.metrics.WindowSample` at each boundary and
  recording the live-structure counters
  (``planner.reservation.live_counts()``, EATP's cache) into a flatness
  series;
* the run checkpoints periodically
  (:mod:`repro.sim.checkpoint`) with the stream and window tracker in
  the envelope's ``extra``, and the harness *proves* restore works: it
  reloads the mid-run checkpoint, drives it to completion with the same
  loop, and requires the restored run's deterministic view to be
  bit-identical to the uninterrupted one.

The flatness check is the memory-leak guard: after a warm-up prefix the
peak reservation footprint must stay within a small factor of the
median — an always-on run whose reservations track *live* state, not
run length.  (EATP's shortest-path cache is keyed by (source, goal)
pairs, a finite set, so it plateaus; it is reported separately rather
than folded into the flatness ratio.)

Run as a module::

    python -m repro soak --planner EATP --duration 20000 [--out soak.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..config import PlannerConfig, SimulationConfig
from ..errors import ConfigurationError
from ..planners import PLANNERS
from ..sim.checkpoint import (dump_checkpoint, load_checkpoint_bytes,
                              save_checkpoint)
from ..sim.engine import Simulation, SimulationResult
from ..sim.metrics import SteadyStateTracker
from ..sim.serialize import deterministic_view, result_to_dict, window_to_dict
from ..warehouse.layout import build_layout
from ..warehouse.state import WarehouseState
from ..workloads.arrivals import ItemStream, resolve_stream


@dataclass(frozen=True)
class SoakSpec:
    """One soak run: a floor, a planner, a stream, and a clock budget."""

    planner: str = "EATP"
    width: int = 18
    height: int = 14
    n_racks: int = 12
    n_pickers: int = 3
    n_robots: int = 3
    #: Registered stream factory name (see ``workloads.arrivals.STREAMS``).
    stream: str = "poisson"
    #: Keyword arguments for the stream factory (``n_racks`` is added).
    stream_params: Tuple[Tuple[str, Any], ...] = (
        ("rate", 0.04), ("seed", 7),
        ("processing_low", 5), ("processing_high", 12))
    #: Stop feeding once the clock passes this tick; then drain.
    duration: int = 20_000
    #: Steady-state window length in ticks.
    window_ticks: int = 1_000
    #: Save a checkpoint every this many windows (0 disables periodic
    #: saves; the mid-run restore proof is taken regardless).
    checkpoint_every: int = 5
    #: Items pulled from the stream per feed call.
    feed_chunk: int = 64
    #: Windows ignored by the flatness check (fill-up transient).
    warmup_windows: int = 4
    #: Post-warmup peak reservation memory must stay within this factor
    #: of the median (purge cadence makes the series saw-toothed, so the
    #: bound is a ratio, not equality).
    flat_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.planner not in PLANNERS:
            raise ConfigurationError(
                f"unknown planner {self.planner!r}; "
                f"choose from {sorted(PLANNERS)}")
        if self.duration < self.window_ticks:
            raise ConfigurationError(
                f"duration ({self.duration}) must cover at least one "
                f"window ({self.window_ticks} ticks)")
        if self.feed_chunk < 1:
            raise ConfigurationError("feed_chunk must be >= 1")

    def make_stream(self) -> ItemStream:
        """A fresh stream positioned at item 0."""
        params = dict(self.stream_params)
        params.setdefault("n_racks", self.n_racks)
        return resolve_stream(self.stream)(**params)


@dataclass
class SoakState:
    """Harness-side loop state checkpointed alongside the engine."""

    #: Arrival tick of the last item fed to the engine.
    fed_through: int = -1
    #: Windows closed so far.
    windows_closed: int = 0
    #: Per-window live-structure counters (the flatness series).
    series: List[Dict[str, Any]] = field(default_factory=list)


def build_soak(spec: SoakSpec,
               planner_config: Optional[PlannerConfig] = None,
               sim_config: Optional[SimulationConfig] = None
               ) -> Tuple[Simulation, ItemStream, SoakState]:
    """Materialise the world, the planner, and the primed stream."""
    layout = build_layout(spec.width, spec.height,
                          n_racks=spec.n_racks, n_pickers=spec.n_pickers)
    state = WarehouseState.from_layout(layout, spec.n_robots)
    planner = PLANNERS[spec.planner](state, planner_config)
    stream = spec.make_stream()
    harness = SoakState()
    first = stream.take(spec.feed_chunk)
    harness.fed_through = first[-1].arrival
    sim = Simulation(state, planner, first, sim_config)
    return sim, stream, harness


def _feed_through(sim: Simulation, stream: ItemStream, harness: SoakState,
                  t_target: int, chunk: int) -> None:
    """Extend the workload until an arrival at or past ``t_target``.

    Feeding strictly ahead of the clock is what keeps ``run_until``
    honest: with the stream covered through the boundary the engine can
    never mistake a not-yet-fed lull for a drained workload.
    """
    while harness.fed_through < t_target:
        items = stream.take(chunk)
        sim.extend_items(items)
        harness.fed_through = items[-1].arrival


def _close_window(sim: Simulation, tracker: SteadyStateTracker,
                  harness: SoakState) -> None:
    """Sample the window at the clock and extend the flatness series."""
    sample = sim.sample_window(tracker)
    entry: Dict[str, Any] = window_to_dict(sample)
    entry["reservation"] = sim.planner.reservation.live_counts()
    cache = getattr(sim.planner, "cache", None)
    if cache is not None:
        entry["cache"] = cache.live_counts()
    harness.series.append(entry)
    harness.windows_closed += 1


def _service_loop(sim: Simulation, stream: ItemStream,
                  tracker: SteadyStateTracker, harness: SoakState,
                  spec: SoakSpec, checkpoint_dir: Optional[str] = None,
                  capture_restore_blob: bool = False) -> Optional[bytes]:
    """Stream windows until the clock passes ``spec.duration``.

    Returns the mid-run checkpoint bytes when ``capture_restore_blob``
    is set (taken once, at the first window boundary past half the
    duration) — the restore-equivalence proof resumes from it.
    """
    blob: Optional[bytes] = None
    while sim.tick < spec.duration:
        boundary = min(tracker.next_boundary, spec.duration)
        _feed_through(sim, stream, harness, boundary, spec.feed_chunk)
        sim.run_until(boundary)
        _close_window(sim, tracker, harness)
        extra = {"stream": stream, "tracker": tracker, "harness": harness}
        if (capture_restore_blob and blob is None
                and sim.tick >= spec.duration // 2):
            blob = dump_checkpoint(sim, extra)
        if (checkpoint_dir is not None and spec.checkpoint_every > 0
                and harness.windows_closed % spec.checkpoint_every == 0):
            save_checkpoint(
                sim, f"{checkpoint_dir}/soak-w{harness.windows_closed}.ckpt",
                extra)
    return blob


def _drain(sim: Simulation) -> SimulationResult:
    """Stop feeding and run the remaining workload to completion."""
    return sim.run()


def _flatness(series: List[Dict[str, Any]], warmup: int,
              flat_factor: float) -> Dict[str, Any]:
    """Peak-vs-median verdict on the post-warmup reservation footprint."""
    steady = [entry["reservation"]["memory_bytes"]
              for entry in series[warmup:]]
    if not steady:
        raise ConfigurationError(
            f"soak produced {len(series)} windows, all inside the "
            f"{warmup}-window warmup; lengthen the run")
    peak = max(steady)
    median = statistics.median(steady)
    return {
        "warmup_windows": warmup,
        "steady_windows": len(steady),
        "reservation_peak_bytes": peak,
        "reservation_median_bytes": median,
        "flat_factor": flat_factor,
        "flat": peak <= flat_factor * max(median, 1.0),
    }


def run_soak(spec: SoakSpec,
             planner_config: Optional[PlannerConfig] = None,
             sim_config: Optional[SimulationConfig] = None,
             checkpoint_dir: Optional[str] = None,
             verify_restore: bool = True) -> Dict[str, Any]:
    """Run one soak end to end; returns the report payload.

    The report carries the windowed series, the flatness verdict, the
    drained run's headline metrics, and — when ``verify_restore`` is on —
    the restore-equivalence proof: a checkpoint taken mid-soak is
    reloaded, driven through the *same* loop to completion, and its
    deterministic view compared against the uninterrupted run's.
    """
    sim, stream, harness = build_soak(spec, planner_config, sim_config)
    tracker = SteadyStateTracker(spec.window_ticks)
    blob = _service_loop(sim, stream, tracker, harness, spec,
                         checkpoint_dir=checkpoint_dir,
                         capture_restore_blob=verify_restore)
    result = _drain(sim)
    view = deterministic_view(result_to_dict(result))
    report: Dict[str, Any] = {
        "spec": {
            "planner": spec.planner,
            "floor": f"{spec.width}x{spec.height}",
            "n_racks": spec.n_racks,
            "n_pickers": spec.n_pickers,
            "n_robots": spec.n_robots,
            "stream": spec.stream,
            "stream_params": dict(spec.stream_params),
            "duration_ticks": spec.duration,
            "window_ticks": spec.window_ticks,
        },
        "windows": harness.series,
        "flatness": _flatness(harness.series, spec.warmup_windows,
                              spec.flat_factor),
        "final": {
            "makespan_ticks": result.metrics.makespan,
            "items_processed": result.metrics.items_processed,
            "peak_memory_bytes": result.metrics.peak_memory_bytes,
        },
    }
    if verify_restore:
        if blob is None:
            raise ConfigurationError(
                "soak finished without reaching the mid-run checkpoint; "
                "lengthen the run or lower window_ticks")
        sim2, extra = load_checkpoint_bytes(blob)
        resumed_at = sim2.tick
        _service_loop(sim2, extra["stream"], extra["tracker"],
                      extra["harness"], spec)
        view2 = deterministic_view(result_to_dict(_drain(sim2)))
        report["restore"] = {
            "checkpoint_bytes": len(blob),
            "resumed_at_tick": resumed_at,
            "bit_identical": view2 == view,
        }
    return report


def soak_ok(report: Dict[str, Any]) -> bool:
    """Whether a soak report passes its own acceptance gates."""
    if not report["flatness"]["flat"]:
        return False
    restore = report.get("restore")
    return restore is None or restore["bit_identical"]


def smoke_spec() -> SoakSpec:
    """The CI-sized soak: a few minutes of stream on the mini floor."""
    return SoakSpec(duration=4_000, window_ticks=400, warmup_windows=2)


def render_soak(report: Dict[str, Any]) -> str:
    """One-screen summary of a soak report."""
    flat = report["flatness"]
    lines = [
        f"soak: {report['spec']['planner']} on "
        f"{report['spec']['floor']}, {report['spec']['duration_ticks']} "
        f"ticks of {report['spec']['stream']} stream",
        f"  windows: {len(report['windows'])} × "
        f"{report['spec']['window_ticks']} ticks",
        f"  reservation memory: peak {flat['reservation_peak_bytes']} B, "
        f"median {flat['reservation_median_bytes']:.0f} B "
        f"({'FLAT' if flat['flat'] else 'GROWING'} at factor "
        f"{flat['flat_factor']:g})",
        f"  drained: {report['final']['items_processed']} items, "
        f"makespan {report['final']['makespan_ticks']}",
    ]
    restore = report.get("restore")
    if restore is not None:
        verdict = ("bit-identical" if restore["bit_identical"]
                   else "DIVERGED")
        lines.append(
            f"  restore: checkpoint {restore['checkpoint_bytes']} B at "
            f"tick {restore['resumed_at_tick']} → {verdict}")
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--planner", default="EATP",
                        choices=sorted(PLANNERS))
    parser.add_argument("--duration", type=int, default=20_000,
                        help="ticks of stream before draining")
    parser.add_argument("--window", type=int, default=1_000,
                        help="steady-state window length in ticks")
    parser.add_argument("--rate", type=float, default=0.04,
                        help="Poisson arrival rate (items per tick)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for periodic checkpoint files")
    parser.add_argument("--no-verify-restore", action="store_true",
                        help="skip the mid-run restore-equivalence proof")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (overrides duration/window)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    spec = smoke_spec() if args.smoke else SoakSpec(
        duration=args.duration, window_ticks=args.window)
    spec = replace(spec, planner=args.planner,
                   stream_params=(("rate", args.rate), ("seed", args.seed),
                                  ("processing_low", 5),
                                  ("processing_high", 12)))
    report = run_soak(spec, checkpoint_dir=args.checkpoint_dir,
                      verify_restore=not args.no_verify_restore)
    print(render_soak(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not soak_ok(report):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
