"""Experiment regenerators for every table and figure of the paper."""

from .ablations import (sweep_cache_threshold, sweep_delta, sweep_knn,
                        sweep_reservation)
from .badcase import BadCaseResult, build_bad_case, run_bad_case
from .fig10 import RateSeries, render_fig10, run_fig10
from .fig11 import TimeSeries, render_fig11, run_fig11
from .fig12 import MemorySeries, render_fig12, run_fig12
from .fig13 import BottleneckReport, render_fig13, run_fig13
from .harness import (DEFAULT_PLANNERS, SLOW_PLANNERS, ComparisonResult,
                      MatrixCell, execute_cell, plan_cells, run_comparison,
                      run_matrix, run_planner)
from .matrix import render_matrix_summary
from .reporting import format_series, format_table, percent_improvement
from .store import ResultStore, open_store
from .table3 import render_table3, run_table3

__all__ = [
    "BadCaseResult",
    "BottleneckReport",
    "ComparisonResult",
    "DEFAULT_PLANNERS",
    "MatrixCell",
    "MemorySeries",
    "RateSeries",
    "ResultStore",
    "SLOW_PLANNERS",
    "TimeSeries",
    "build_bad_case",
    "execute_cell",
    "format_series",
    "format_table",
    "open_store",
    "percent_improvement",
    "plan_cells",
    "render_fig10",
    "render_fig11",
    "render_fig12",
    "render_fig13",
    "render_matrix_summary",
    "render_table3",
    "run_bad_case",
    "run_comparison",
    "run_matrix",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_planner",
    "run_table3",
    "sweep_cache_threshold",
    "sweep_delta",
    "sweep_knn",
    "sweep_reservation",
]
