"""Action-selection policies for the rack-selection learner (Sec. V-A).

The paper adopts ε-greedy: exploit the current value function with
probability 1 − ε, act uniformly at random with probability ε, balancing
exploration against the risk of a still-inaccurate q trapping the planner
in a sub-optimal batching rhythm.
"""

from __future__ import annotations

import random
from typing import Optional

from .mdp import ACTIONS, RackState
from .qtable import QTable


class GreedyPolicy:
    """Pure exploitation: argmax_α q(s, α).  Used after training freezes."""

    def __init__(self, table: QTable) -> None:
        self._table = table

    def action(self, state: RackState) -> int:
        """The current best action for ``state``."""
        return self._table.best_action(state)


class EpsilonGreedyPolicy:
    """The paper's ε-greedy policy over the binary action space.

    Parameters
    ----------
    table:
        The value function being learned.
    epsilon:
        Exploration probability (paper default 0.1).
    rng:
        Private RNG so planner runs are reproducible; falls back to a
        fresh seeded generator.
    """

    def __init__(self, table: QTable, epsilon: float,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0,1], got {epsilon}")
        self._table = table
        self.epsilon = epsilon
        self._rng = rng if rng is not None else random.Random(0)

    def action(self, state: RackState) -> int:
        """Sample an action: explore w.p. ε, otherwise exploit."""
        if self._rng.random() < self.epsilon:
            return self._rng.choice(ACTIONS)
        return self._table.best_action(state)
