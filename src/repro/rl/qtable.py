"""A tabular action-value function over the rack-selection state space."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .mdp import ACTIONS, RackState


class QTable:
    """q(s, α) for the binary rack-selection MDP.

    Unvisited entries default to ``initial_value``.  The default of 0 is
    *optimistic* for this problem (all true values are negative because
    rewards are negated delays), which nudges early exploration toward
    untried actions — helpful before the bootstrap has seeded the table.
    """

    def __init__(self, initial_value: float = 0.0) -> None:
        self._values: Dict[Tuple[RackState, int], float] = {}
        self.initial_value = initial_value

    def get(self, state: RackState, action: int) -> float:
        """Current estimate of q(state, action)."""
        return self._values.get((state, action), self.initial_value)

    def set(self, state: RackState, action: int, value: float) -> None:
        """Overwrite q(state, action)."""
        self._values[(state, action)] = value

    def best_value(self, state: RackState) -> float:
        """max_α q(state, α) — the bootstrap target of Eq. 5."""
        return max(self.get(state, action) for action in ACTIONS)

    def best_action(self, state: RackState) -> int:
        """argmax_α q(state, α), ties broken toward ACTION_REQUEST.

        The tie-break matters only before any update has touched the
        state; preferring "request" keeps a cold-start system live instead
        of deadlocking every rack on "wait".
        """
        values = [(self.get(state, action), action) for action in ACTIONS]
        best_value, best = values[0]
        for value, action in values[1:]:
            if value > best_value or (value == best_value and action > best):
                best_value, best = value, action
        return best

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[Tuple[RackState, int], float]]:
        return iter(self._values.items())

    def memory_bytes(self) -> int:
        """Approximate table footprint (for the MC metric)."""
        return 64 + 150 * len(self._values)
