"""The rack-selection Markov decision process (paper Sec. V-A, Fig. 6).

Each *rack* is an MDP instance:

* **State** ``⟨ap_r, ar_r⟩`` — the accumulated processing time of the
  rack's picker and of the rack itself.  The joint definition couples the
  rack with its picker, which is what lets the policy sense whether the
  fulfilment bottleneck currently lies in transport or in queuing.
* **Action** — binary: ``1`` = request pickup/delivery/processing now,
  ``0`` = wait for more items to batch.  (The paper chose the per-rack
  binary view precisely to avoid a combinatorial meta-action space.)
* **Transition** — on ``action = 1`` both counters grow by the batch's
  total processing time Σ_{i∈τ_r} i; on ``0`` the state is unchanged.
* **Reward (Eq. 4)** — ``c = −(max{f_p, d(l_r, l_p)} + Σ_{i∈τ_r} i)``:
  the (negated) estimated increment the selection adds to the picker's
  finish time, covering waiting plus processing.

For a *tabular* learner the raw counters are unusable — they increase
monotonically, so every visited state would be fresh (the divergence the
paper fixes with the greedy bootstrap).  We additionally bucket the
counters with a fixed bin width, which keeps the table finite and lets
experience transfer across racks; the bin width is a documented knob
(:class:`~repro.config.QLearningConfig.state_bin_width`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Discretised MDP state: (picker-processing bucket, rack-processing bucket).
RackState = Tuple[int, int]

#: The binary action space of Sec. V-A.
ACTION_WAIT = 0
ACTION_REQUEST = 1
ACTIONS = (ACTION_WAIT, ACTION_REQUEST)


@dataclass(frozen=True)
class RackObservation:
    """Raw, un-bucketed observation of one rack at one timestamp.

    Attributes
    ----------
    picker_accumulated:
        ap_r — ticks the rack's picker has spent processing so far.
    rack_accumulated:
        ar_r — ticks this rack has been processed so far.
    picker_finish_time:
        f_p of Eq. 3 for the rack's picker (remaining + queued work).
    distance_to_picker:
        d(l_r, l_p) — rack home to picker station.
    batch_processing_time:
        Σ_{i∈τ_r} i — total processing time of the pending items.
    n_pending:
        |τ_r| — number of pending items (drives the waiting cost).
    """

    picker_accumulated: int
    rack_accumulated: int
    picker_finish_time: int
    distance_to_picker: int
    batch_processing_time: int
    n_pending: int = 1


def bucketize(observation: RackObservation, bin_width: int) -> RackState:
    """Project a raw observation onto the tabular state space."""
    return (observation.picker_accumulated // bin_width,
            observation.rack_accumulated // bin_width)


def transition(state: RackState, action: int,
               batch_processing_time: int, bin_width: int) -> RackState:
    """Apply the Sec. V-A transition in bucketed space.

    ``ACTION_WAIT`` leaves the state unchanged; ``ACTION_REQUEST`` advances
    both accumulated counters by the batch's processing time.
    """
    if action == ACTION_WAIT:
        return state
    delta = batch_processing_time // bin_width
    return (state[0] + delta, state[1] + delta)


def reward(observation: RackObservation) -> float:
    """Eq. 4: the negated estimated finish-time increment of selecting now.

    ``max{f_p, d(l_r, l_p)}`` is the wait before processing can start —
    whichever of "picker still busy" and "rack still travelling" dominates —
    and the batch processing time is the work itself.  Negated because the
    learner maximises reward while the problem minimises makespan.
    """
    wait = max(observation.picker_finish_time, observation.distance_to_picker)
    return -float(wait + observation.batch_processing_time)


def request_cost(observation: RackObservation) -> float:
    """The decision-relevant part of Eq. 4: −max{f_p, d(l_r, l_p)}.

    Eq. 4's batch term Σ_{i∈τ_r} i is *policy-invariant in total*: every
    item's processing time is paid exactly once whichever batch carries
    it, so including it in the per-selection reward systematically biases
    the comparison against selecting (the WAIT action never pays it).
    The overhead term — the wait before processing can start, whichever
    of "picker still busy" (f_p) and "rack still travelling" (d)
    dominates — is what a selection actually *adds*, so it is what the
    learner optimises.  :func:`reward` keeps the paper's literal Eq. 4
    for reporting and analysis.
    """
    return -float(max(observation.picker_finish_time,
                      observation.distance_to_picker))


def wait_cost(observation: RackObservation, weight: float = 10.0) -> float:
    """The per-decision cost of choosing WAIT for this rack.

    The paper defines rewards only for *selections* (Eq. 4); a tabular
    learner also needs the WAIT action grounded, otherwise the discounted
    bootstrap makes waiting dominate every (negative-valued) selection and
    the policy starves.  Waiting delays the end-to-end completion of every
    pending item on the rack, so the cost scales with −|τ_r| — cheap to
    defer an almost-empty rack, expensive to defer a loaded one.

    ``weight`` converts between the two cost currencies: deferral is paid
    in *item-ticks per tick* while the request overhead (max{f_p, d}) is
    paid in *robot-ticks per selection*.  A selection decision is revisited
    roughly every tick over the learner's ~1/(1 − γ) tick horizon, so the
    default weight of 10 (= 1/(1 − 0.9)) makes one item pending for one
    horizon comparable to one tick of overhead.  The induced dispatch
    boundary is ``|τ_r| ≳ max{f_p, d} / weight``: ~2–4 items when
    transport dominates, deep batches once the picker queue builds — the
    Fig. 13 adaptive behaviour.  This is a documented refinement, not in
    the paper's pseudocode (see DESIGN.md §5 notes).
    """
    return -weight * float(observation.n_pending)
