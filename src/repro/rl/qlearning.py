"""Q-learning for rack selection (paper Sec. V-B, Eq. 5).

Implements the temporal-difference update

    q(s, α) ← q(s, α) + β · (c + γ · max_α' q(s', α') − q(s, α))

plus the paper's convergence fix: because the raw state counters only ever
grow, pure bootstrapping keeps chasing unexplored states; so at each
timestamp the planner flips a Bernoulli(δ) coin and, on success, lets the
greedy "most slack picker first" strategy pick racks while still feeding
the observed transitions through this same update ("approximate" mode,
Alg. 2 lines 6–9).  The coin lives in the planner; this module is the
update rule, the ε-greedy head, and the bookkeeping they share.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..config import QLearningConfig
from .mdp import (ACTION_REQUEST, ACTION_WAIT, RackObservation, RackState,
                  bucketize, request_cost, transition, wait_cost)
from .policy import EpsilonGreedyPolicy
from .qtable import QTable


@dataclass
class LearnerStats:
    """Counters for diagnosing the learning dynamics in experiments."""

    updates: int = 0
    explored_actions: int = 0
    greedy_updates: int = 0
    cumulative_reward: float = 0.0


class QLearningAgent:
    """The rack-selection learner shared by ATP and EATP.

    One agent serves *all* racks: the bucketed ⟨ap, ar⟩ state space is
    rack-agnostic, so experience from any rack generalises to all racks in
    the same regime — this is what makes the table converge within a single
    run, mirroring the paper's online training.
    """

    def __init__(self, config: Optional[QLearningConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.config = config if config is not None else QLearningConfig()
        self._rng = rng if rng is not None else random.Random(11)
        self.table = QTable()
        self.policy = EpsilonGreedyPolicy(self.table, self.config.epsilon,
                                          self._rng)
        self.stats = LearnerStats()

    # -- observation plumbing ---------------------------------------------

    def state_of(self, observation: RackObservation) -> RackState:
        """Bucket a raw observation into the tabular state."""
        return bucketize(observation, self.config.state_bin_width)

    def use_approximation(self) -> bool:
        """Sample the Bernoulli(δ) coin of Alg. 2 line 5.

        ``True`` means "this timestamp, select greedily and update q from
        the greedy choices" — the bootstrap-seeding mode.
        """
        return self._rng.random() < self.config.delta

    def utilities(self, observation: RackObservation) -> "tuple[float, float]":
        """One-step lookahead utilities ``(u_wait, u_request)``.

        ``u(α) = c(s, α) + γ · max_α' q(s', α')`` — the immediate cost is
        computed from the live observation, the continuation value from
        the learned table.  The lookahead is what lets selection react to
        the *current* picker status: the paper's bucketed ⟨ap, ar⟩ state
        cannot encode f_p, but the immediate term can (a documented
        reproduction refinement; see DESIGN.md §5 notes).

        With γ below 1 the induced decision boundary is approximately
        "request once |τ_r| ≳ (1 − γ)·max{f_p, d}": small batches
        suffice while transport dominates, heavy batching emerges as the
        picker queue grows — the adaptive behaviour of the paper's
        Fig. 13 case study.
        """
        cfg = self.config
        state = self.state_of(observation)
        u_wait = (wait_cost(observation, cfg.deferral_weight)
                  + cfg.discount * self.table.best_value(state))
        next_state = transition(state, ACTION_REQUEST,
                                observation.batch_processing_time,
                                cfg.state_bin_width)
        u_request = (request_cost(observation)
                     + cfg.discount * self.table.best_value(next_state))
        return u_wait, u_request

    def choose_action(self, observation: RackObservation) -> int:
        """ε-greedy over the lookahead utilities (ties favour REQUEST)."""
        if self._rng.random() < self.config.epsilon:
            self.stats.explored_actions += 1
            return self._rng.choice((ACTION_WAIT, ACTION_REQUEST))
        u_wait, u_request = self.utilities(observation)
        return ACTION_REQUEST if u_request >= u_wait else ACTION_WAIT

    def priority(self, observation: RackObservation) -> float:
        """Examination order for Alg. 2 line 12 (lower = examined first).

        The paper examines racks "with the largest expected finish time"
        first; in utility terms those are the racks where requesting
        beats waiting by the widest margin, so we rank by
        ``u_wait − u_request`` ascending (most request-favoured first).
        """
        u_wait, u_request = self.utilities(observation)
        return u_wait - u_request

    # -- the Eq. 5 update ----------------------------------------------------

    def update(self, observation: RackObservation, action: int,
               greedy: bool = False) -> float:
        """Apply one Eq. 5 update for ``(state(observation), action)``.

        Parameters
        ----------
        observation:
            The rack's pre-decision observation (defines s, the reward
            inputs, and the batch size driving the transition).
        action:
            The action taken (ACTION_WAIT keeps s' = s and pays the
            per-tick deferral cost; ACTION_REQUEST pays Eq. 4 and
            advances the counters).
        greedy:
            Whether this update came from the approximation branch
            (bookkeeping only).

        Returns
        -------
        float
            The TD error, handy for convergence diagnostics.
        """
        cfg = self.config
        state = self.state_of(observation)
        if action == ACTION_REQUEST:
            c = request_cost(observation)
        else:
            # Waiting delays every pending item (see
            # :func:`~repro.rl.mdp.wait_cost`).
            c = wait_cost(observation, cfg.deferral_weight)
        next_state = transition(state, action,
                                observation.batch_processing_time,
                                cfg.state_bin_width)
        target = c + cfg.discount * self.table.best_value(next_state)
        old = self.table.get(state, action)
        td_error = target - old
        self.table.set(state, action, old + cfg.learning_rate * td_error)

        self.stats.updates += 1
        self.stats.cumulative_reward += c
        if greedy:
            self.stats.greedy_updates += 1
        return td_error

    def memory_bytes(self) -> int:
        """Learner footprint (Q-table) for the MC metric."""
        return self.table.memory_bytes()
