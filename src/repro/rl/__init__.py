"""Reinforcement-learning rack selection: MDP, Q-table, Q-learning, policies."""

from .mdp import (ACTION_REQUEST, ACTION_WAIT, ACTIONS, RackObservation,
                  RackState, bucketize, reward, transition)
from .policy import EpsilonGreedyPolicy, GreedyPolicy
from .qlearning import LearnerStats, QLearningAgent
from .qtable import QTable

__all__ = [
    "ACTIONS",
    "ACTION_REQUEST",
    "ACTION_WAIT",
    "EpsilonGreedyPolicy",
    "GreedyPolicy",
    "LearnerStats",
    "QLearningAgent",
    "QTable",
    "RackObservation",
    "RackState",
    "bucketize",
    "reward",
    "transition",
]
