"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still distinguishing configuration mistakes from runtime planning
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class LayoutError(ReproError):
    """A warehouse layout is malformed or impossible to build.

    Raised, for example, when a storage block would overlap the picking
    area, when dimensions are non-positive, or when the requested number
    of racks does not fit into the storage area.
    """


class InvalidLocationError(ReproError):
    """A coordinate is outside the grid or on an impassable cell."""


class PathNotFoundError(ReproError):
    """No conflict-free path exists (or the search budget was exhausted).

    Attributes
    ----------
    source, goal:
        The endpoints of the failed search, kept for diagnostics.
    stats:
        The :class:`~repro.pathfinding.st_astar.SearchStats` of the failed
        search when the raiser had them (the packed core always attaches
        them; the frozen seed core predates the field and leaves ``None``).
        Carrying the counters on the exception means exhaustion
        diagnostics — expansions spent, peak open size, the budget in
        force — survive into logs and test failures instead of being lost
        at raise time.
    """

    def __init__(self, source, goal, reason: str = "", stats=None) -> None:
        self.source = source
        self.goal = goal
        self.stats = stats
        detail = f" ({reason})" if reason else ""
        if stats is not None:
            detail += (f" [expansions={stats.expansions}, "
                       f"generated={stats.generated}, "
                       f"peak_open={stats.peak_open}, "
                       f"budget={stats.budget}]")
        super().__init__(f"no path from {source} to {goal}{detail}")


class ConflictError(ReproError):
    """A planning scheme violates the conflict-freedom constraint."""


class PlanningError(ReproError):
    """A planner produced an inconsistent scheme (duplicate robot, etc.)."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state.

    This always indicates a bug (a broken invariant), never a legitimate
    workload condition, so it is *not* caught anywhere inside the library.
    """


class ConfigurationError(ReproError):
    """A configuration value is out of its documented domain."""


class CheckpointError(ReproError):
    """A checkpoint payload cannot be saved or restored.

    Raised when a checkpoint file is missing its envelope, was written by
    an incompatible payload version, or does not contain a simulation —
    conditions a service-mode operator can hit with a stale file, so they
    are reported as a catchable error rather than an assertion.
    """
