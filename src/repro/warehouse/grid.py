"""The warehouse grid: bounds, passability, and distance primitives.

The paper partitions the warehouse into unit cells the size of a robot
(Sec. II) and plans on the induced 4-connected graph.  ``Grid`` is the
single source of truth for which cells exist and which are blocked
(structural obstacles such as walls or pillars — racks themselves are *not*
obstacles because robots travel beneath them in rack-to-picker systems).
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..errors import InvalidLocationError
from ..types import CELL_KEY_SHIFT, Cell, manhattan

#: Minimum compiled-module ABI carrying the native field kernel
#: (``bfs_fill`` over the prepared adjacency capsule).
FIELD_KERNEL_ABI = 3

#: The loaded ``_stsearch`` module when the field kernel is active,
#: else ``None`` (python flood).  Set by
#: :func:`repro.pathfinding.st_astar.set_search_kernel` so one switch
#: governs every compiled plane.
_FIELD_MODULE = None


def set_field_kernel(module) -> None:
    """Select the native heuristic-field flood (``None`` = python).

    A module predating :data:`FIELD_KERNEL_ABI` is silently rejected —
    the search kernel may still be usable while field construction
    falls back to the python flood, exactly like the mutation kernel's
    staleness handling.
    """
    global _FIELD_MODULE
    if module is not None and \
            getattr(module, "KERNEL_ABI", 0) < FIELD_KERNEL_ABI:
        module = None
    _FIELD_MODULE = module


def field_kernel_name() -> str:
    """Which field-flood implementation is active."""
    return "compiled" if _FIELD_MODULE is not None else "python"


class Grid:
    """A bounded 4-connected grid with optional blocked cells.

    Parameters
    ----------
    width, height:
        Grid dimensions; cells are ``(x, y)`` with ``0 <= x < width`` and
        ``0 <= y < height``.
    blocked:
        Cells robots may never occupy (walls, pillars).  Iterable of cells.
    """

    __slots__ = ("width", "height", "_blocked", "adjacency", "cell_keys",
                 "_manhattan_fields", "_kernel_capsule", "_components")

    #: Cap on memoised Manhattan fields before the cache resets; bounds the
    #: worst case (every cell used as a goal) to ~cap·H·W ints.
    _MANHATTAN_FIELD_CAP = 1024

    def __init__(self, width: int, height: int,
                 blocked: Optional[Iterable[Cell]] = None) -> None:
        if width <= 0 or height <= 0:
            raise InvalidLocationError(
                f"grid dimensions must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self._blocked: Set[Cell] = set(blocked) if blocked else set()
        for cell in self._blocked:
            if not self.in_bounds(cell):
                raise InvalidLocationError(f"blocked cell {cell} is out of bounds")
        self._build_packed_tables()
        self._manhattan_fields: Dict[Cell, List[int]] = {}
        #: Lazily-built native prepared-grid capsule (per loaded module).
        self._kernel_capsule = None
        #: Lazily-built connected-component labels (``connected()``).
        self._components: Optional[array] = None

    def _build_packed_tables(self) -> None:
        """Precompute the packed-integer views the search core runs on.

        ``adjacency[ci]`` holds, for the cell with flat index ``ci = x·H +
        y``, one ``(neighbour_ci, neighbour_key)`` pair per passable
        cardinal neighbour *in the same order* :meth:`neighbours` yields
        them, so the packed search expands successors identically to the
        tuple-based one.  ``cell_keys[ci]`` is the grid-independent bit
        packing ``x << 16 | y`` the reservation structures key on.
        Blocked cells get an empty adjacency row and are never the target
        of anyone else's row, so the search can index blindly.
        """
        height = self.height
        blocked = self._blocked
        adjacency: List[Tuple[Tuple[int, int], ...]] = []
        cell_keys: List[int] = []
        for x in range(self.width):
            for y in range(height):
                cell_keys.append((x << CELL_KEY_SHIFT) | y)
                if (x, y) in blocked:
                    adjacency.append(())
                    continue
                adjacency.append(tuple(
                    (nx * height + ny, (nx << CELL_KEY_SHIFT) | ny)
                    for nx, ny in self.neighbours((x, y))))
        self.adjacency: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(adjacency)
        self.cell_keys: List[int] = cell_keys

    # -- basic queries ----------------------------------------------------

    def in_bounds(self, cell: Cell) -> bool:
        """Whether ``cell`` lies inside the grid rectangle."""
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def passable(self, cell: Cell) -> bool:
        """Whether a robot may occupy ``cell`` (in bounds and not blocked)."""
        return self.in_bounds(cell) and cell not in self._blocked

    def require_passable(self, cell: Cell) -> None:
        """Raise :class:`InvalidLocationError` unless ``cell`` is passable."""
        if not self.passable(cell):
            raise InvalidLocationError(f"cell {cell} is not passable")

    @property
    def blocked_cells(self) -> frozenset:
        """The blocked cells as an immutable set."""
        return frozenset(self._blocked)

    @property
    def n_cells(self) -> int:
        """Total number of cells, blocked or not (H·W of the paper)."""
        return self.width * self.height

    # -- packed-integer view ------------------------------------------------

    def cell_index(self, cell: Cell) -> int:
        """Flat index ``x·H + y`` — the spatial part of a packed state."""
        return cell[0] * self.height + cell[1]

    def index_cell(self, index: int) -> Cell:
        """Invert :meth:`cell_index`."""
        return divmod(index, self.height)

    def kernel_capsule(self, module):
        """The native kernel's prepared-grid capsule, built lazily.

        Flattening the adjacency table is O(HW) and the grid is
        immutable, so the capsule is built once and shared by every
        compiled entry point (search, field flood, tier-0 leg).  The
        slot is dropped on pickling (:meth:`__reduce__`) and rebuilt on
        first use in the receiving process.
        """
        capsule = self._kernel_capsule
        if capsule is None:
            capsule = module.prepare_grid(
                self.height, self.adjacency, self.cell_keys)
            self._kernel_capsule = capsule
        return capsule

    def manhattan_field(self, goal: Cell) -> List[int]:
        """Flat Manhattan-distance-to-``goal`` field, indexed by cell index.

        Memoised per goal so repeated searches toward the same cell pay
        the O(HW) build once; the cache resets past
        ``_MANHATTAN_FIELD_CAP`` distinct goals to bound its footprint.
        """
        field = self._manhattan_fields.get(goal)
        if field is None:
            if len(self._manhattan_fields) >= self._MANHATTAN_FIELD_CAP:
                self._manhattan_fields.clear()
            gx, gy = goal
            height = self.height
            field = []
            for x in range(self.width):
                dx = abs(x - gx)
                field.extend(dx + abs(y - gy) for y in range(height))
            self._manhattan_fields[goal] = field
        return field

    def neighbours(self, cell: Cell) -> Iterator[Cell]:
        """Yield passable cardinal neighbours of ``cell``."""
        x, y = cell
        for nxt in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if self.passable(nxt):
                yield nxt

    def cells(self) -> Iterator[Cell]:
        """Yield every passable cell, row-major."""
        for y in range(self.height):
            for x in range(self.width):
                if (x, y) not in self._blocked:
                    yield (x, y)

    # -- distances ---------------------------------------------------------

    def manhattan(self, a: Cell, b: Cell) -> int:
        """Manhattan distance (ignores obstacles)."""
        return manhattan(a, b)

    def distance_flat(self, source: Cell, unreached: int = -1) -> array:
        """True shortest-path distances as a flat ``array('i')`` buffer.

        ``dist[x * H + y]`` is the BFS distance from ``source``;
        unvisited cells carry the ``unreached`` sentinel, which must not
        collide with a real distance (a distance is at most
        ``n_cells - 1``, so ``-1`` and ``n_cells + 1`` are both safe).
        The int32 buffer is the zero-copy backing store the compiled
        search / tier-0 kernels index directly, and what the shared
        field arena ships between worker processes.  The native flood
        (``bfs_fill``) and the python flood below visit cells in the
        same FIFO order and are bit-identical.
        """
        self.require_passable(source)
        n_cells = self.width * self.height
        if 0 <= unreached < n_cells:
            raise ValueError(
                f"unreached sentinel {unreached} collides with a distance")
        src = source[0] * self.height + source[1]
        module = _FIELD_MODULE
        if module is not None:
            dist = array("i", bytes(4 * n_cells))
            module.bfs_fill(self.kernel_capsule(module), src, dist,
                            unreached)
            return dist
        # Flood over the precomputed adjacency table with flat
        # distances; an order of magnitude faster than tuple BFS, which
        # matters because every heuristic field starts with one of these.
        adjacency = self.adjacency
        dist = array("i", (unreached,)) * n_cells
        dist[src] = 0
        frontier: deque = deque((src,))
        while frontier:
            ci = frontier.popleft()
            d = dist[ci] + 1
            for nci, __ in adjacency[ci]:
                if dist[nci] == unreached:
                    dist[nci] = d
                    frontier.append(nci)
        return dist

    def bfs_distances(self, source: Cell) -> np.ndarray:
        """True shortest-path distances from ``source`` to every cell.

        Returns a ``(width, height)`` int32 array with ``-1`` marking
        unreachable cells.  Used to build exact heuristics and the
        shortest-path cache; O(HW) per call.  The flood itself lives in
        :meth:`distance_flat` (kernel-accelerated when available); this
        wrapper keeps the historical ndarray shape and sentinel.
        """
        flat = self.distance_flat(source, unreached=-1)
        return np.array(flat, dtype=np.int32).reshape(
            self.width, self.height)

    def _component_labels(self) -> array:
        """Flat connected-component labels, flooded once and cached.

        Passable cells in the same 4-connected component share a label;
        blocked cells keep ``-1``.  One O(HW) flood total, against the
        previous full BFS *per* :meth:`connected` call.
        """
        labels = self._components
        if labels is None:
            n_cells = self.width * self.height
            labels = array("i", (-1,)) * n_cells
            adjacency = self.adjacency
            blocked = self._blocked
            height = self.height
            label = 0
            frontier: deque = deque()
            for ci in range(n_cells):
                if labels[ci] >= 0 or divmod(ci, height) in blocked:
                    continue
                labels[ci] = label
                frontier.append(ci)
                while frontier:
                    cur = frontier.popleft()
                    for nci, __ in adjacency[cur]:
                        if labels[nci] < 0:
                            labels[nci] = label
                            frontier.append(nci)
                label += 1
            self._components = labels
        return labels

    def connected(self, a: Cell, b: Cell) -> bool:
        """Whether a path exists between two passable cells.

        O(1) after the first call: answers come from the cached
        connected-component labels rather than a fresh full-floor BFS.
        """
        if not (self.passable(a) and self.passable(b)):
            return False
        labels = self._component_labels()
        return labels[self.cell_index(a)] == labels[self.cell_index(b)]

    # -- dunder ------------------------------------------------------------

    def __reduce__(self):
        """Pickle as the constructor call, not slot state.

        The lazy kernel capsule is a PyCapsule (unpicklable) and the
        memoised fields/labels are cheap to rebuild, so worker initargs
        and checkpoints ship only the defining triple; everything
        derived is reconstructed deterministically on first use.
        """
        return (Grid, (self.width, self.height,
                       tuple(sorted(self._blocked))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Grid({self.width}x{self.height}, "
                f"{len(self._blocked)} blocked)")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return (self.width == other.width and self.height == other.height
                and self._blocked == other._blocked)

    def __hash__(self) -> int:
        return hash((self.width, self.height, frozenset(self._blocked)))
