"""The warehouse grid: bounds, passability, and distance primitives.

The paper partitions the warehouse into unit cells the size of a robot
(Sec. II) and plans on the induced 4-connected graph.  ``Grid`` is the
single source of truth for which cells exist and which are blocked
(structural obstacles such as walls or pillars — racks themselves are *not*
obstacles because robots travel beneath them in rack-to-picker systems).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, List, Optional, Set

import numpy as np

from ..errors import InvalidLocationError
from ..types import Cell, manhattan


class Grid:
    """A bounded 4-connected grid with optional blocked cells.

    Parameters
    ----------
    width, height:
        Grid dimensions; cells are ``(x, y)`` with ``0 <= x < width`` and
        ``0 <= y < height``.
    blocked:
        Cells robots may never occupy (walls, pillars).  Iterable of cells.
    """

    __slots__ = ("width", "height", "_blocked")

    def __init__(self, width: int, height: int,
                 blocked: Optional[Iterable[Cell]] = None) -> None:
        if width <= 0 or height <= 0:
            raise InvalidLocationError(
                f"grid dimensions must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self._blocked: Set[Cell] = set(blocked) if blocked else set()
        for cell in self._blocked:
            if not self.in_bounds(cell):
                raise InvalidLocationError(f"blocked cell {cell} is out of bounds")

    # -- basic queries ----------------------------------------------------

    def in_bounds(self, cell: Cell) -> bool:
        """Whether ``cell`` lies inside the grid rectangle."""
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def passable(self, cell: Cell) -> bool:
        """Whether a robot may occupy ``cell`` (in bounds and not blocked)."""
        return self.in_bounds(cell) and cell not in self._blocked

    def require_passable(self, cell: Cell) -> None:
        """Raise :class:`InvalidLocationError` unless ``cell`` is passable."""
        if not self.passable(cell):
            raise InvalidLocationError(f"cell {cell} is not passable")

    @property
    def blocked_cells(self) -> frozenset:
        """The blocked cells as an immutable set."""
        return frozenset(self._blocked)

    @property
    def n_cells(self) -> int:
        """Total number of cells, blocked or not (H·W of the paper)."""
        return self.width * self.height

    def neighbours(self, cell: Cell) -> Iterator[Cell]:
        """Yield passable cardinal neighbours of ``cell``."""
        x, y = cell
        for nxt in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if self.passable(nxt):
                yield nxt

    def cells(self) -> Iterator[Cell]:
        """Yield every passable cell, row-major."""
        for y in range(self.height):
            for x in range(self.width):
                if (x, y) not in self._blocked:
                    yield (x, y)

    # -- distances ---------------------------------------------------------

    def manhattan(self, a: Cell, b: Cell) -> int:
        """Manhattan distance (ignores obstacles)."""
        return manhattan(a, b)

    def bfs_distances(self, source: Cell) -> np.ndarray:
        """True shortest-path distances from ``source`` to every cell.

        Returns a ``(width, height)`` int32 array with ``-1`` marking
        unreachable cells.  Used to build exact heuristics and the
        shortest-path cache; O(HW) per call.
        """
        self.require_passable(source)
        dist = np.full((self.width, self.height), -1, dtype=np.int32)
        dist[source] = 0
        frontier: deque = deque((source,))
        while frontier:
            cell = frontier.popleft()
            d = dist[cell] + 1
            for nxt in self.neighbours(cell):
                if dist[nxt] < 0:
                    dist[nxt] = d
                    frontier.append(nxt)
        return dist

    def connected(self, a: Cell, b: Cell) -> bool:
        """Whether a path exists between two passable cells."""
        if not (self.passable(a) and self.passable(b)):
            return False
        return bool(self.bfs_distances(a)[b] >= 0)

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Grid({self.width}x{self.height}, "
                f"{len(self._blocked)} blocked)")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return (self.width == other.width and self.height == other.height
                and self._blocked == other._blocked)

    def __hash__(self) -> int:
        return hash((self.width, self.height, frozenset(self._blocked)))
