"""Warehouse substrate: grid, layout, entities, state, and KNN index."""

from .entities import (Item, Picker, Rack, RackPhase, Robot, RobotState)
from .grid import Grid
from .knn import StaticRackKNN
from .layout import PICKING_AREA_HEIGHT, WarehouseLayout, build_layout
from .render import occupancy_counts, render_state
from .state import WarehouseState

__all__ = [
    "Grid",
    "Item",
    "PICKING_AREA_HEIGHT",
    "Picker",
    "Rack",
    "RackPhase",
    "Robot",
    "RobotState",
    "StaticRackKNN",
    "WarehouseLayout",
    "WarehouseState",
    "build_layout",
    "occupancy_counts",
    "render_state",
]
