"""Warehouse layout generation.

Builds the 2-D rack-to-picker layout of the paper's Fig. 2: a storage area
filled with rack blocks separated by travel aisles, and a picking area along
the bottom edge where the picker stations sit.  The generator is fully
parametric so the Table II datasets (and their scaled-down versions) are all
instances of the same builder.

A layout is *data*: it records the grid, rack home cells, and picker
locations.  Entity objects are materialised from it by
:func:`~repro.warehouse.state.WarehouseState.from_layout`.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..errors import LayoutError
from ..types import Cell
from .grid import Grid

#: Height (in cells) reserved for the picking area at the bottom of the grid.
PICKING_AREA_HEIGHT = 3


@dataclass(frozen=True)
class WarehouseLayout:
    """An immutable description of a warehouse floor.

    Attributes
    ----------
    grid:
        The passability grid (no structural obstacles by default — rack
        cells stay passable because robots drive beneath racks).
    rack_homes:
        Home cell of each rack, index = rack id.
    picker_locations:
        Cell of each picker station, index = picker id.
    """

    grid: Grid
    rack_homes: Tuple[Cell, ...]
    picker_locations: Tuple[Cell, ...]

    @property
    def n_racks(self) -> int:
        """Number of rack home cells."""
        return len(self.rack_homes)

    @property
    def n_pickers(self) -> int:
        """Number of picker stations."""
        return len(self.picker_locations)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`LayoutError` on failure.

        Invariants: all cells passable and in-bounds, no two racks share a
        home, no rack home inside the picking area, at least one picker.
        """
        if not self.picker_locations:
            raise LayoutError("a warehouse needs at least one picker")
        if not self.rack_homes:
            raise LayoutError("a warehouse needs at least one rack")
        seen = set()
        for home in self.rack_homes:
            if not self.grid.passable(home):
                raise LayoutError(f"rack home {home} is not passable")
            if home in seen:
                raise LayoutError(f"duplicate rack home {home}")
            seen.add(home)
        for loc in self.picker_locations:
            if not self.grid.passable(loc):
                raise LayoutError(f"picker location {loc} is not passable")
        picker_set = set(self.picker_locations)
        if len(picker_set) != len(self.picker_locations):
            raise LayoutError("duplicate picker locations")
        overlap = seen & picker_set
        if overlap:
            raise LayoutError(f"rack homes overlap picker stations: {sorted(overlap)}")


def build_layout(width: int, height: int, n_racks: int, n_pickers: int,
                 block_width: int = 4, block_height: int = 2,
                 aisle: int = 1) -> WarehouseLayout:
    """Build a rack-to-picker layout in the style of the paper's Fig. 2.

    The storage area occupies everything above the picking strip.  Racks are
    placed in ``block_width`` × ``block_height`` blocks separated by
    ``aisle``-wide travel lanes, filled row-major from the top-left until
    ``n_racks`` homes are placed.  Pickers are spread evenly along the
    bottom row of the grid.

    Parameters
    ----------
    width, height:
        Overall grid dimensions (the paper's W and H).
    n_racks:
        Number of rack home cells to place.
    n_pickers:
        Number of picker stations along the bottom edge.
    block_width, block_height:
        Shape of each rack block in cells.
    aisle:
        Width of the travel aisles between blocks, in cells.

    Raises
    ------
    LayoutError
        If the storage area cannot host ``n_racks`` racks or the bottom
        edge cannot host ``n_pickers`` pickers.
    """
    if width < 4 or height < PICKING_AREA_HEIGHT + 3:
        raise LayoutError(
            f"grid {width}x{height} too small for a rack-to-picker layout")
    if n_pickers < 1:
        raise LayoutError("need at least one picker")
    if n_pickers > width:
        raise LayoutError(
            f"cannot place {n_pickers} pickers on a bottom edge of width {width}")
    if block_width < 1 or block_height < 1 or aisle < 1:
        raise LayoutError("block dimensions and aisle width must be >= 1")

    grid = Grid(width, height)
    rack_homes = _place_rack_blocks(width, height, n_racks,
                                    block_width, block_height, aisle)
    picker_locations = _place_pickers(width, height, n_pickers)
    layout = WarehouseLayout(grid=grid,
                             rack_homes=tuple(rack_homes),
                             picker_locations=tuple(picker_locations))
    layout.validate()
    return layout


def _place_rack_blocks(width: int, height: int, n_racks: int,
                       block_width: int, block_height: int,
                       aisle: int) -> List[Cell]:
    """Fill the storage area with rack blocks, returning ``n_racks`` homes."""
    homes: List[Cell] = []
    # Leave an aisle along every border of the storage area so that any rack
    # is reachable from any side.
    y = aisle
    storage_bottom = height - PICKING_AREA_HEIGHT - 1
    while y + block_height - 1 <= storage_bottom - aisle and len(homes) < n_racks:
        x = aisle
        while x + block_width - 1 <= width - 1 - aisle and len(homes) < n_racks:
            for dy in range(block_height):
                for dx in range(block_width):
                    if len(homes) < n_racks:
                        homes.append((x + dx, y + dy))
            x += block_width + aisle
        y += block_height + aisle
    if len(homes) < n_racks:
        raise LayoutError(
            f"storage area of {width}x{height} grid fits only {len(homes)} "
            f"racks (requested {n_racks}); enlarge the grid or shrink blocks")
    return homes


def obstruct_layout(layout: WarehouseLayout, n_pillars: int,
                    seed: int = 0) -> WarehouseLayout:
    """Scatter structural pillars over a layout's storage area.

    Pillar cells are drawn deterministically from ``seed`` among passable
    storage-area cells that host neither a rack home nor a picker.  A
    candidate that would disconnect any rack home or picker from the rest
    of the floor is skipped, so every scenario built on the obstructed
    layout remains solvable; planners must detour around the pillars.

    Raises
    ------
    LayoutError
        If fewer than ``n_pillars`` cells can be blocked without breaking
        reachability.
    """
    if n_pillars < 1:
        raise LayoutError(f"n_pillars must be >= 1, got {n_pillars}")
    grid = layout.grid
    keep_free = set(layout.rack_homes) | set(layout.picker_locations)
    storage_bottom = grid.height - PICKING_AREA_HEIGHT - 1
    candidates = [(x, y)
                  for y in range(storage_bottom + 1)
                  for x in range(grid.width)
                  if grid.passable((x, y)) and (x, y) not in keep_free]
    random.Random(seed).shuffle(candidates)

    blocked: Set[Cell] = set(grid.blocked_cells)
    placed = 0
    for cell in candidates:
        if placed == n_pillars:
            break
        blocked.add(cell)
        if _all_reachable(grid, blocked, keep_free):
            placed += 1
        else:
            blocked.discard(cell)
    if placed < n_pillars:
        raise LayoutError(
            f"could only place {placed} of {n_pillars} pillars without "
            f"disconnecting racks or pickers")
    obstructed = WarehouseLayout(grid=Grid(grid.width, grid.height,
                                           blocked=blocked),
                                 rack_homes=layout.rack_homes,
                                 picker_locations=layout.picker_locations)
    obstructed.validate()
    return obstructed


def _all_reachable(grid: Grid, blocked: Set[Cell],
                   targets: Set[Cell]) -> bool:
    """BFS over the grid minus ``blocked``: are all ``targets`` connected?"""
    start = next(iter(targets))
    seen = {start}
    frontier = deque([start])
    remaining = len(targets - {start})
    while frontier and remaining:
        x, y = frontier.popleft()
        for cell in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if (cell in seen or not grid.in_bounds(cell)
                    or cell in blocked or not grid.passable(cell)):
                continue
            seen.add(cell)
            if cell in targets:
                remaining -= 1
            frontier.append(cell)
    return remaining == 0


def _place_pickers(width: int, height: int, n_pickers: int) -> List[Cell]:
    """Spread picker stations evenly along the bottom row."""
    y = height - 1
    if n_pickers == 1:
        return [(width // 2, y)]
    step = (width - 1) / (n_pickers - 1)
    xs = sorted({min(width - 1, round(i * step)) for i in range(n_pickers)})
    # Rounding can collide stations on narrow grids; fall back to distinct
    # leftmost cells in that case.
    while len(xs) < n_pickers:
        for x in range(width):
            if x not in xs:
                xs.append(x)
                break
        xs.sort()
    return [(x, y) for x in xs[:n_pickers]]
