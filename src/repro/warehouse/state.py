"""The live warehouse state shared by the simulator and the planners.

``WarehouseState`` owns the entity collections (racks, pickers, robots) and
the cheap indexes planners query every timestamp: racks per picker, idle
robots, racks with pending items.  It is the ``R``, ``P``, ``A`` triple of
the TPRW problem statement plus the grid they live on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import SimulationError
from ..types import Cell
from .entities import Item, Picker, Rack, RackPhase, Robot, RobotState
from .grid import Grid
from .layout import WarehouseLayout


@dataclass
class WarehouseState:
    """Mutable world state: the grid plus all entities, with integrity checks.

    Construct via :meth:`from_layout`, which materialises entities from a
    :class:`~repro.warehouse.layout.WarehouseLayout` and assigns each rack
    to its picker round-robin (the fixed rack→picker association of Def. 1).
    """

    grid: Grid
    racks: List[Rack]
    pickers: List[Picker]
    robots: List[Robot]
    _racks_by_picker: Dict[int, List[int]] = field(default_factory=dict, repr=False)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_layout(cls, layout: WarehouseLayout, n_robots: int,
                    rack_to_picker: Optional[Sequence[int]] = None) -> "WarehouseState":
        """Materialise a state from a layout.

        Parameters
        ----------
        layout:
            The floor plan (validated).
        n_robots:
            Robots to create.  They start idle, parked at the first
            ``n_robots`` rack home cells (idling beneath racks, as deployed
            rack-to-picker systems do).
        rack_to_picker:
            Optional explicit rack→picker assignment (index = rack id).
            Defaults to round-robin, which spreads load evenly.
        """
        layout.validate()
        if n_robots < 1:
            raise SimulationError("need at least one robot")
        if n_robots > layout.n_racks:
            raise SimulationError(
                f"{n_robots} robots cannot park beneath {layout.n_racks} racks")
        if rack_to_picker is None:
            rack_to_picker = [i % layout.n_pickers for i in range(layout.n_racks)]
        if len(rack_to_picker) != layout.n_racks:
            raise SimulationError(
                "rack_to_picker must assign every rack exactly once")
        for picker_id in rack_to_picker:
            if not 0 <= picker_id < layout.n_pickers:
                raise SimulationError(f"picker id {picker_id} out of range")

        racks = [Rack(rack_id=i, home=home, picker_id=rack_to_picker[i])
                 for i, home in enumerate(layout.rack_homes)]
        pickers = [Picker(picker_id=i, location=loc)
                   for i, loc in enumerate(layout.picker_locations)]
        robots = [Robot(robot_id=i, location=layout.rack_homes[i])
                  for i in range(n_robots)]
        state = cls(grid=layout.grid, racks=racks, pickers=pickers, robots=robots)
        state._rebuild_indexes()
        return state

    def _rebuild_indexes(self) -> None:
        self._racks_by_picker = {p.picker_id: [] for p in self.pickers}
        for rack in self.racks:
            self._racks_by_picker[rack.picker_id].append(rack.rack_id)

    # -- planner-facing queries ---------------------------------------------

    def idle_robots(self) -> List[Robot]:
        """The set A: robots able to accept a mission this timestamp."""
        return [robot for robot in self.robots if robot.is_idle]

    def selectable_racks(self) -> List[Rack]:
        """Racks that are home (STORED) and carry at least one pending item."""
        return [rack for rack in self.racks
                if rack.phase is RackPhase.STORED and rack.pending_items]

    def racks_of_picker(self, picker_id: int) -> List[Rack]:
        """All racks associated with ``picker_id`` (fixed association)."""
        return [self.racks[rid] for rid in self._racks_by_picker[picker_id]]

    def picker_of_rack(self, rack_id: int) -> Picker:
        """The picker a rack's items are destined to."""
        return self.pickers[self.racks[rack_id].picker_id]

    def pickers_with_work(self) -> List[Picker]:
        """Pickers that have at least one selectable rack (Alg. 1 line 4)."""
        out = []
        for picker in self.pickers:
            for rid in self._racks_by_picker[picker.picker_id]:
                rack = self.racks[rid]
                if rack.phase is RackPhase.STORED and rack.has_pending:
                    out.append(picker)
                    break
        return out

    def total_pending_items(self) -> int:
        """Number of items that emerged but are not yet part of a batch."""
        return sum(len(rack.pending_items) for rack in self.racks)

    # -- mutation helpers used by the simulator ------------------------------

    def deliver_item(self, item: Item) -> None:
        """Register a newly arrived item on its rack (online arrival)."""
        rack = self.racks[item.rack_id]
        rack.pending_items.append(item)

    def check_invariants(self) -> None:
        """Validate cross-entity invariants; raise on violation.

        Used by tests and (cheaply) by the simulator in debug runs:
        - a robot in a carrying state references an existing rack;
        - a rack IN_TRANSIT is referenced by exactly one busy robot;
        - picker queues only contain IN_TRANSIT racks.
        """
        carrier_of: Dict[int, int] = {}
        for robot in self.robots:
            if robot.state is RobotState.IDLE:
                if robot.rack_id is not None:
                    raise SimulationError(
                        f"idle robot {robot.robot_id} still references rack "
                        f"{robot.rack_id}")
                continue
            if robot.rack_id is None:
                raise SimulationError(
                    f"busy robot {robot.robot_id} has no rack assigned")
            if robot.rack_id in carrier_of:
                raise SimulationError(
                    f"rack {robot.rack_id} carried by robots "
                    f"{carrier_of[robot.rack_id]} and {robot.robot_id}")
            carrier_of[robot.rack_id] = robot.robot_id
        for rack in self.racks:
            if rack.phase is RackPhase.IN_TRANSIT and rack.rack_id not in carrier_of:
                raise SimulationError(
                    f"rack {rack.rack_id} is IN_TRANSIT but unowned")
            if rack.phase is RackPhase.STORED and rack.rack_id in carrier_of:
                raise SimulationError(
                    f"rack {rack.rack_id} is STORED but robot "
                    f"{carrier_of[rack.rack_id]} claims it")
        for picker in self.pickers:
            for rid in picker.queue:
                if self.racks[rid].phase is not RackPhase.IN_TRANSIT:
                    raise SimulationError(
                        f"queued rack {rid} at picker {picker.picker_id} "
                        f"is not IN_TRANSIT")
