"""Entities of the rack-to-picker warehouse (paper Definitions 1–3).

``Item``, ``Rack``, ``Picker`` and ``Robot`` are deliberately *mutable*
records: the simulator advances their state in place every tick, and the
planners read them through :class:`~repro.warehouse.state.WarehouseState`.

Identity conventions: every entity carries a small integer id unique within
its kind.  Planners key their bookkeeping on those ids, never on object
identity, so states can be snapshotted and compared in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from collections import deque

from ..types import Cell, Tick


@dataclass(frozen=True)
class Item:
    """One task: a single item to be picked from a rack (Def. 1's τ_r).

    Attributes
    ----------
    item_id:
        Global id, unique across the whole workload.
    rack_id:
        The rack this item sits on.
    arrival:
        Tick at which the item emerges on the rack (online arrival).
    processing_time:
        Picker time units needed to process the item (the element of τ_r).
    """

    item_id: int
    rack_id: int
    arrival: Tick
    processing_time: int

    def __post_init__(self) -> None:
        if self.processing_time <= 0:
            raise ValueError(
                f"item {self.item_id}: processing_time must be positive, "
                f"got {self.processing_time}")
        if self.arrival < 0:
            raise ValueError(f"item {self.item_id}: arrival must be >= 0")


class RackPhase(enum.Enum):
    """Where a rack currently is in its fulfilment cycle."""

    STORED = "stored"          # at its home cell, available for selection
    IN_TRANSIT = "in_transit"  # a robot is fetching / carrying / returning it


@dataclass
class Rack:
    """A storage rack (Def. 1: ⟨l_r, τ_r, p_r⟩).

    The rack's *home* location is fixed; racks always return to it after
    processing.  ``pending_items`` is the live τ_r — items that have emerged
    but are not yet part of a dispatched batch.
    """

    rack_id: int
    home: Cell
    picker_id: int
    pending_items: List[Item] = field(default_factory=list)
    phase: RackPhase = RackPhase.STORED
    #: Accumulated processing time this rack has received (ar_r, Sec. V-A).
    accumulated_processing: int = 0
    #: Tick at which the rack last returned home (f_r bookkeeping).
    last_return: Tick = 0

    @property
    def pending_processing_time(self) -> int:
        """Σ_{i∈τ_r} i — total processing time of the items awaiting dispatch."""
        return sum(item.processing_time for item in self.pending_items)

    @property
    def has_pending(self) -> bool:
        """Whether the rack currently carries any unserved items."""
        return bool(self.pending_items)

    @property
    def oldest_arrival(self) -> Optional[Tick]:
        """Arrival tick of the oldest pending item (LEF's selection key)."""
        if not self.pending_items:
            return None
        return min(item.arrival for item in self.pending_items)

    def take_batch(self) -> List[Item]:
        """Remove and return the current pending items as a dispatch batch.

        Called by the simulator the moment a planner selects this rack;
        items that arrive later join the *next* batch — this is exactly the
        batching boundary the adaptive policy plays with (Sec. III-B).
        """
        batch, self.pending_items = self.pending_items, []
        return batch


@dataclass
class Picker:
    """A human picking station (Def. 2: ⟨l_p, q_p, e_p⟩).

    ``queue`` holds rack ids in FCFS order (q_p); ``remaining_current`` is
    e_p, the time left on the rack currently being processed.
    """

    picker_id: int
    location: Cell
    queue: Deque[int] = field(default_factory=deque)
    #: Rack currently being processed, or None when the station is free.
    current_rack: Optional[int] = None
    #: e_p — remaining processing time of the current rack's batch.
    remaining_current: int = 0
    #: Σ processing time of batches sitting in the queue (not yet started).
    queued_processing: int = 0
    #: ap_p — accumulated busy time (Sec. V-A state component).
    accumulated_processing: int = 0
    #: Total ticks this picker has spent processing (for PPR).
    busy_ticks: int = 0

    @property
    def finish_time_estimate(self) -> int:
        """f_p of Eq. 3: e_p plus the processing time of all queued batches."""
        return self.remaining_current + self.queued_processing

    @property
    def is_busy(self) -> bool:
        """Whether the picker is processing a rack right now."""
        return self.current_rack is not None


class RobotState(enum.Enum):
    """Robot availability (Def. 3's s_a) refined with the mission stage."""

    IDLE = "idle"
    TO_RACK = "to_rack"        # pickup leg
    TO_PICKER = "to_picker"    # delivery leg (carrying the rack)
    QUEUING = "queuing"        # parked in the picker queue
    PROCESSING = "processing"  # rack under the picker
    RETURNING = "returning"    # return leg (carrying the rack home)

    @property
    def busy(self) -> bool:
        """The paper's binary busy/idle view of the state."""
        return self is not RobotState.IDLE


@dataclass
class Robot:
    """A mobile robot (Def. 3: ⟨l_a, s_a⟩)."""

    robot_id: int
    location: Cell
    state: RobotState = RobotState.IDLE
    #: Rack currently assigned/carried, if any.
    rack_id: Optional[int] = None
    #: Total ticks spent in any busy state (for RWR).
    busy_ticks: int = 0

    @property
    def is_idle(self) -> bool:
        """Whether the robot can accept a new mission."""
        return self.state is RobotState.IDLE
