"""ASCII rendering of warehouse state, for debugging and demos.

Produces a row-per-``y`` text map of the floor:

* ``.``  empty travel cell
* ``#``  structurally blocked cell
* ``o``  rack home (rack present, no pending items)
* ``1``–``9`` rack home with that many pending items (``+`` for ≥ 10)
* ``_``  rack home whose rack is currently in transit
* ``P``  picker station (``Q`` when its queue is non-empty)
* ``r``  idle robot / ``R`` busy robot (drawn above anything else)

The legend is intentionally one character per cell so a whole default
dataset fits in a terminal.
"""

from __future__ import annotations

from typing import Dict, List

from ..types import Cell
from .entities import RackPhase
from .state import WarehouseState


def render_state(state: WarehouseState, show_legend: bool = False) -> str:
    """Render ``state`` as an ASCII map (origin top-left, x right, y down)."""
    grid = state.grid
    rows: List[List[str]] = [["." for __ in range(grid.width)]
                             for __ in range(grid.height)]

    for cell in grid.blocked_cells:
        x, y = cell
        rows[y][x] = "#"

    for rack in state.racks:
        x, y = rack.home
        if rack.phase is RackPhase.IN_TRANSIT:
            rows[y][x] = "_"
        elif not rack.pending_items:
            rows[y][x] = "o"
        else:
            count = len(rack.pending_items)
            rows[y][x] = str(count) if count <= 9 else "+"

    for picker in state.pickers:
        x, y = picker.location
        rows[y][x] = "Q" if picker.queue or picker.is_busy else "P"

    for robot in state.robots:
        x, y = robot.location
        rows[y][x] = "R" if robot.state.busy else "r"

    lines = ["".join(row) for row in rows]
    if show_legend:
        lines.append("")
        lines.append(". empty  # wall  o rack  1-9/+ pending items  "
                     "_ rack away  P/Q picker  r/R robot")
    return "\n".join(lines)


def occupancy_counts(state: WarehouseState) -> Dict[str, int]:
    """Summary counts matching the renderer's categories (for tests/UIs)."""
    return {
        "racks_home": sum(1 for r in state.racks
                          if r.phase is RackPhase.STORED),
        "racks_in_transit": sum(1 for r in state.racks
                                if r.phase is RackPhase.IN_TRANSIT),
        "racks_with_pending": sum(1 for r in state.racks if r.pending_items),
        "busy_robots": sum(1 for a in state.robots if a.state.busy),
        "busy_pickers": sum(1 for p in state.pickers
                            if p.is_busy or p.queue),
    }
