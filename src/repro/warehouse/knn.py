"""Static K-nearest-racks index for flip requesting (paper Sec. VI-A).

Rack home locations are fixed, so "the K racks closest to any given cell"
is a static structure.  EATP flips the requesting side: instead of sorting
all racks by value and matching robots to them, it walks the idle robots
and probes only each robot's K closest racks — turning an
O(|R| log |R|) selection into an O(|A|·K) one.

The index answers by *home* cell.  A rack that is currently in transit is
simply skipped by the caller; its slot is not re-used, matching the paper's
"static and easy to maintain" description.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import Cell, manhattan


class StaticRackKNN:
    """Precomputed K closest racks for every grid cell.

    Parameters
    ----------
    rack_homes:
        Home cell per rack (index = rack id).
    width, height:
        Grid dimensions the index covers.
    k:
        How many closest racks to precompute per cell.

    Notes
    -----
    Distances are Manhattan, matching the unobstructed default layouts; on
    grids with blocked cells the true distance can exceed Manhattan, but the
    index is only used to *shortlist* candidates, so admissibility is not
    required.  Memory is O(H·W·K) int32, comfortably below the
    spatiotemporal structures it helps avoid.
    """

    #: Scratch budget of the chunked build: at most this many int64
    #: distance-key elements (~64 MB) live at once.
    _CHUNK_ELEMS = 1 << 23

    def __init__(self, rack_homes: Sequence[Cell], width: int, height: int,
                 k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if not rack_homes:
            raise ConfigurationError("need at least one rack to index")
        self.k = min(k, len(rack_homes))
        self.width = width
        self.height = height
        self._homes = np.array(rack_homes, dtype=np.int64)  # (n_racks, 2)

        # dist[x, y, r] = |x - hx_r| + |y - hy_r|.  The selection per cell
        # is the first K of the *stable* ascending argsort of that row —
        # equivalently, the ascending order of the composite key
        # ``dist · n_racks + rack_id`` (rack ids are distinct, so the key
        # is unique and breaks distance ties by id exactly as the stable
        # sort does).  The composite lets the build use argpartition —
        # O(R) per cell instead of O(R log R) — and process the floor in
        # x-row chunks so peak scratch stays bounded: the one-shot
        # (W, H, R) int64 tensor is ~5 GB on the paper-true 541×302 floor
        # with thousands of racks, where the chunked build holds a few
        # dozen MB.  Output is bit-identical to the original whole-grid
        # stable argsort.
        n_racks = len(rack_homes)
        dtype = np.int16 if n_racks < 2 ** 15 else np.int32
        self._nearest = np.empty((width, height, self.k), dtype=dtype)
        rack_ids = np.arange(n_racks, dtype=np.int64)
        dy = np.abs(np.arange(height, dtype=np.int64)[:, None]
                    - self._homes[:, 1][None, :])               # (H, R)
        rows = max(1, self._CHUNK_ELEMS // max(1, height * n_racks))
        for x0 in range(0, width, rows):
            xs = np.arange(x0, min(x0 + rows, width), dtype=np.int64)
            dx = np.abs(xs[:, None] - self._homes[:, 0][None, :])  # (w, R)
            key = ((dx[:, None, :] + dy[None, :, :]) * n_racks
                   + rack_ids)                                  # (w, H, R)
            if self.k < n_racks:
                part = np.argpartition(key, self.k - 1,
                                       axis=2)[:, :, :self.k]
                picked = np.take_along_axis(key, part, axis=2)
                order = np.take_along_axis(
                    part, np.argsort(picked, axis=2), axis=2)
            else:
                order = np.argsort(key, axis=2)
            self._nearest[x0:x0 + len(xs)] = order              # (w, H, k)

    def nearest(self, cell: Cell) -> List[int]:
        """Rack ids of the K racks closest to ``cell``, nearest first."""
        x, y = cell
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(f"cell {cell} outside indexed area")
        return [int(r) for r in self._nearest[x, y]]

    def nearest_where(self, cell: Cell,
                      predicate: Callable[[int], bool]) -> Optional[int]:
        """First of the K closest racks satisfying ``predicate``, or None.

        This is the flip-requesting probe: EATP calls it with
        "rack is selectable and not yet claimed this timestamp".
        """
        x, y = cell
        for rack_id in self._nearest[x, y]:
            if predicate(int(rack_id)):
                return int(rack_id)
        return None

    def memory_bytes(self) -> int:
        """Approximate footprint of the index (for the MC metric)."""
        return int(self._nearest.nbytes + self._homes.nbytes)
