"""Static K-nearest-racks index for flip requesting (paper Sec. VI-A).

Rack home locations are fixed, so "the K racks closest to any given cell"
is a static structure.  EATP flips the requesting side: instead of sorting
all racks by value and matching robots to them, it walks the idle robots
and probes only each robot's K closest racks — turning an
O(|R| log |R|) selection into an O(|A|·K) one.

The index answers by *home* cell.  A rack that is currently in transit is
simply skipped by the caller; its slot is not re-used, matching the paper's
"static and easy to maintain" description.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import Cell, manhattan


class StaticRackKNN:
    """Precomputed K closest racks for every grid cell.

    Parameters
    ----------
    rack_homes:
        Home cell per rack (index = rack id).
    width, height:
        Grid dimensions the index covers.
    k:
        How many closest racks to precompute per cell.

    Notes
    -----
    Distances are Manhattan, matching the unobstructed default layouts; on
    grids with blocked cells the true distance can exceed Manhattan, but the
    index is only used to *shortlist* candidates, so admissibility is not
    required.  Memory is O(H·W·K) int32, comfortably below the
    spatiotemporal structures it helps avoid.
    """

    def __init__(self, rack_homes: Sequence[Cell], width: int, height: int,
                 k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if not rack_homes:
            raise ConfigurationError("need at least one rack to index")
        self.k = min(k, len(rack_homes))
        self.width = width
        self.height = height
        self._homes = np.array(rack_homes, dtype=np.int64)  # (n_racks, 2)

        xs = np.arange(width, dtype=np.int64)
        ys = np.arange(height, dtype=np.int64)
        # dist[x, y, r] = |x - hx_r| + |y - hy_r|, built without a Python loop.
        dx = np.abs(xs[:, None] - self._homes[:, 0][None, :])   # (W, R)
        dy = np.abs(ys[:, None] - self._homes[:, 1][None, :])   # (H, R)
        dist = dx[:, None, :] + dy[None, :, :]                  # (W, H, R)
        order = np.argsort(dist, axis=2, kind="stable")[:, :, :self.k]
        dtype = np.int16 if len(rack_homes) < 2 ** 15 else np.int32
        self._nearest = order.astype(dtype)                     # (W, H, k)

    def nearest(self, cell: Cell) -> List[int]:
        """Rack ids of the K racks closest to ``cell``, nearest first."""
        x, y = cell
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(f"cell {cell} outside indexed area")
        return [int(r) for r in self._nearest[x, y]]

    def nearest_where(self, cell: Cell,
                      predicate: Callable[[int], bool]) -> Optional[int]:
        """First of the K closest racks satisfying ``predicate``, or None.

        This is the flip-requesting probe: EATP calls it with
        "rack is selectable and not yet claimed this timestamp".
        """
        x, y = cell
        for rack_id in self._nearest[x, y]:
            if predicate(int(rack_id)):
                return int(rack_id)
        return None

    def memory_bytes(self) -> int:
        """Approximate footprint of the index (for the MC metric)."""
        return int(self._nearest.nbytes + self._homes.nbytes)
