"""Planning schemes — the output contract of every planner.

``U_t`` of the TPRW problem: at timestamp ``t`` a planner emits one
:class:`Assignment` per dispatched robot (the robot, the rack it will
fulfil, and the conflict-free pickup-leg path ``u_a``).  The simulator
turns assignments into missions; later legs (delivery, return) are planned
lazily through :meth:`~repro.planners.base.Planner.plan_leg` because their
start times depend on queuing and processing durations unknown at dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import PlanningError
from ..pathfinding.paths import Path


@dataclass(frozen=True)
class Assignment:
    """One robot dispatched to one rack, with its pickup-leg path."""

    robot_id: int
    rack_id: int
    pickup_path: Path


@dataclass
class PlanningScheme:
    """``U_t``: the set of assignments emitted at one timestamp."""

    timestamp: int
    assignments: List[Assignment] = field(default_factory=list)

    def add(self, assignment: Assignment) -> None:
        """Append an assignment, rejecting duplicate robots or racks."""
        for existing in self.assignments:
            if existing.robot_id == assignment.robot_id:
                raise PlanningError(
                    f"robot {assignment.robot_id} assigned twice at "
                    f"t={self.timestamp}")
            if existing.rack_id == assignment.rack_id:
                raise PlanningError(
                    f"rack {assignment.rack_id} assigned twice at "
                    f"t={self.timestamp}")
        self.assignments.append(assignment)

    def __len__(self) -> int:
        return len(self.assignments)

    def __iter__(self):
        return iter(self.assignments)

    @property
    def robot_ids(self) -> Tuple[int, ...]:
        """Robots dispatched by this scheme."""
        return tuple(a.robot_id for a in self.assignments)

    @property
    def rack_ids(self) -> Tuple[int, ...]:
        """Racks selected by this scheme."""
        return tuple(a.rack_id for a in self.assignments)
