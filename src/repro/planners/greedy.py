"""The shared greedy "most slack picker first" selection.

Algorithm 1's core loop, factored out because three planners use it: NTP
as its whole strategy, and ATP/EATP as their Bernoulli(δ) *approximation*
branch that seeds the Q-table (Alg. 2 lines 6–9, Alg. 3 line 8).
"""

from __future__ import annotations

from typing import Callable, List

from ..warehouse.entities import Rack
from .base import SelectionEntry


def most_slack_first(racks: List[Rack], budget: int,
                     finish_time: Callable[[int], int]) -> List[SelectionEntry]:
    """Select up to ``budget`` racks, most-slack picker first.

    Parameters
    ----------
    racks:
        The selectable racks (STORED with pending items).
    budget:
        Number of idle robots — the dispatch capacity this timestamp.
    finish_time:
        Maps a picker id to its f_p (Eq. 3).

    Ordering is deterministic: pickers ascending by (f_p, id), racks of a
    picker ascending by id.
    """
    entries: List[SelectionEntry] = []
    racks_by_picker = {}
    for rack in racks:
        racks_by_picker.setdefault(rack.picker_id, []).append(rack)
    pickers = sorted(racks_by_picker,
                     key=lambda pid: (finish_time(pid), pid))
    for picker_id in pickers:
        for rack in sorted(racks_by_picker[picker_id],
                           key=lambda r: r.rack_id):
            if len(entries) == budget:
                return entries
            entries.append(SelectionEntry(rack=rack))
    return entries
