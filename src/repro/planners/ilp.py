"""Integer-linear-programming planner — the Boysen et al. baseline [12].

The original formulation assigns racks to processing slots to minimise
completion time in a parts-to-picker system; the paper extends it with
picker status.  Per timestamp we solve the induced **assignment problem**:

    minimise   Σ_{a,r} x_{a,r} · cost(a, r)
    subject to each robot ≤ 1 rack, each rack ≤ 1 robot, x binary

with ``cost(a, r)`` the end-to-end delay estimate of dispatching robot
``a`` to rack ``r`` now — pickup + delivery + queuing (picker status) +
processing + return, mirroring Eq. 2.

The constraint matrix of an assignment problem is totally unimodular, so
its LP relaxation is integral: the Hungarian solution *is* the ILP optimum.
We therefore solve with ``scipy.optimize.linear_sum_assignment``, which is
exact and orders of magnitude faster than a generic MILP — the substitution
is value-preserving by construction.  (A generic-MILP path via
``scipy.optimize.milp`` is kept for cross-checking small instances.)
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.optimize import linear_sum_assignment, milp, LinearConstraint, Bounds

from ..types import Tick, manhattan
from ..warehouse.entities import Rack, Robot
from .base import Planner, SelectionEntry


class IlpPlanner(Planner):
    """Per-timestamp optimal robot–rack assignment (extended [12])."""

    name = "ILP"

    #: Instances at or below this robot×rack size may use the generic MILP
    #: cross-check (tests only; the default path is always Hungarian).
    MILP_CROSSCHECK_LIMIT = 64

    def _select(self, t: Tick, racks: List[Rack],
                robots: List[Robot]) -> List[SelectionEntry]:
        cost = self._cost_matrix(racks, robots)
        row_ind, col_ind = linear_sum_assignment(cost)
        entries = [SelectionEntry(rack=racks[c], robot=robots[r])
                   for r, c in zip(row_ind, col_ind)]
        return entries

    def _cost_matrix(self, racks: List[Rack],
                     robots: List[Robot]) -> np.ndarray:
        """cost[a, r] = estimated fulfilment-cycle delay of the pairing.

        Mirrors Eq. 2: pickup d(l_a, l_r) + delivery d(l_r, l_p) +
        queuing max{f_p − transport, 0} + processing Σ items + return
        d(l_p, l_r).  Distances are Manhattan (exact on the open layouts,
        cheap everywhere) — the ILP needs a matrix, not a search.
        """
        cost = np.zeros((len(robots), len(racks)), dtype=np.float64)
        delivery = {}
        for j, rack in enumerate(racks):
            picker = self.state.pickers[rack.picker_id]
            d_rp = manhattan(rack.home, picker.location)
            delivery[j] = (d_rp, picker.finish_time_estimate,
                           rack.pending_processing_time)
        for i, robot in enumerate(robots):
            for j, rack in enumerate(racks):
                d_rp, f_p, batch = delivery[j]
                d_ar = manhattan(robot.location, rack.home)
                transport = d_ar + d_rp
                queuing = max(f_p - transport, 0)
                cost[i, j] = transport + queuing + batch + d_rp
        return cost

    # -- MILP cross-check (exactness witness for tests) -------------------------

    def solve_milp(self, racks: List[Rack],
                   robots: List[Robot]) -> Optional[List[SelectionEntry]]:
        """Solve the same assignment with a generic MILP.

        Returns ``None`` when the instance exceeds
        :data:`MILP_CROSSCHECK_LIMIT`; used by tests to witness that the
        Hungarian fast path is the true ILP optimum.
        """
        n_a, n_r = len(robots), len(racks)
        if n_a * n_r > self.MILP_CROSSCHECK_LIMIT:
            return None
        cost = self._cost_matrix(racks, robots).reshape(-1)
        n_vars = n_a * n_r

        rows = []
        for i in range(n_a):  # each robot at most one rack
            row = np.zeros(n_vars)
            row[i * n_r:(i + 1) * n_r] = 1
            rows.append(row)
        for j in range(n_r):  # each rack at most one robot
            row = np.zeros(n_vars)
            row[j::n_r] = 1
            rows.append(row)
        # Maximise the number of assignments, then minimise cost: enforce
        # exactly min(n_a, n_r) assignments, like linear_sum_assignment.
        total = np.ones(n_vars)
        k = min(n_a, n_r)

        constraints = [
            LinearConstraint(np.array(rows), -np.inf, 1),
            LinearConstraint(total[None, :], k, k),
        ]
        result = milp(c=cost, constraints=constraints,
                      integrality=np.ones(n_vars),
                      bounds=Bounds(0, 1))
        if not result.success:
            return None
        chosen = np.flatnonzero(np.round(result.x) == 1)
        entries = []
        for flat in chosen:
            i, j = divmod(int(flat), n_r)
            entries.append(SelectionEntry(rack=racks[j], robot=robots[i]))
        return entries
