"""Adaptive Task Planning — Algorithm 2 (paper Sec. V-D).

Couples the Q-learning rack selector with spatiotemporal A* path finding:

* **Rack selection.**  Each timestamp, sample Bernoulli(δ).  On success use
  the greedy most-slack-picker approximation and push its choices through
  the Eq. 5 update (seeding the otherwise-divergent bootstrap); otherwise
  sort racks descending by q(s_r, wait) — the racks whose *continued
  waiting* the learner values most are examined first — and take ε-greedy
  actions per rack until every idle robot has work.
* **Path finding.**  Closest idle robot per selected rack, spatiotemporal
  A* against the (memory-heavy) time-expanded reservation graph.

One documented refinement: the pseudocode only updates q for *selected*
racks, yet sorts by q(s_r, wait).  For that sort key to carry signal the
WAIT action must be updated too, so we apply the Eq. 5 update on both
branches; WAIT pays the per-tick deferral cost −|τ_r| (see
:func:`~repro.rl.mdp.wait_cost`) and keeps the state unchanged.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..config import PlannerConfig
from ..rl.mdp import ACTION_REQUEST, ACTION_WAIT, RackObservation
from ..rl.qlearning import QLearningAgent
from ..types import Tick
from ..warehouse.entities import Rack, Robot
from ..warehouse.state import WarehouseState
from .base import Planner, SelectionEntry
from .greedy import most_slack_first


class AdaptiveTaskPlanner(Planner):
    """Algorithm 2: RL rack selection + spatiotemporal-graph path finding."""

    name = "ATP"

    def __init__(self, state: WarehouseState,
                 config: Optional[PlannerConfig] = None) -> None:
        super().__init__(state, config)
        rng = random.Random(self.config.seed)
        self.agent = QLearningAgent(self.config.qlearning, rng)

    # -- observation --------------------------------------------------------

    def observe(self, rack: Rack) -> RackObservation:
        """Build the Sec. V-A observation for one rack, right now."""
        picker = self.state.pickers[rack.picker_id]
        return RackObservation(
            picker_accumulated=picker.accumulated_processing,
            rack_accumulated=rack.accumulated_processing,
            picker_finish_time=picker.finish_time_estimate,
            distance_to_picker=self.transport_distance(rack),
            batch_processing_time=rack.pending_processing_time,
            n_pending=len(rack.pending_items),
        )

    # -- Alg. 2 selection ------------------------------------------------------

    def _select(self, t: Tick, racks: List[Rack],
                robots: List[Robot]) -> List[SelectionEntry]:
        budget = len(robots)
        if self.agent.use_approximation():
            return self._select_greedy(racks, budget)
        return self._select_learned(racks, budget)

    def _select_greedy(self, racks: List[Rack],
                       budget: int) -> List[SelectionEntry]:
        """Alg. 2 lines 6–9: greedy choice, q updated from each selection."""
        entries = most_slack_first(racks, budget, self.picker_finish_time)
        for entry in entries:
            self.agent.update(self.observe(entry.rack), ACTION_REQUEST,
                              greedy=True)
        return entries

    def _select_learned(self, racks: List[Rack],
                        budget: int) -> List[SelectionEntry]:
        """Alg. 2 lines 11–19: ε-greedy per rack, most urgent rack first.

        "Urgent" is the agent's :meth:`~repro.rl.qlearning.QLearningAgent.
        priority` — the racks whose expected finish time grows fastest if
        deferred are examined (and thus, under REQUEST, dispatched) first.
        """
        observations: Dict[int, RackObservation] = {
            rack.rack_id: self.observe(rack) for rack in racks}
        ordered = sorted(
            racks,
            key=lambda rack: (self.agent.priority(observations[rack.rack_id]),
                              rack.rack_id))
        entries: List[SelectionEntry] = []
        for rack in ordered:
            observation = observations[rack.rack_id]
            action = self.agent.choose_action(observation)
            if action == ACTION_REQUEST:
                entries.append(SelectionEntry(rack=rack))
                self.agent.update(observation, ACTION_REQUEST)
                if len(entries) == budget:
                    break
            else:
                self.agent.update(observation, ACTION_WAIT)
        return entries

    # -- memory ------------------------------------------------------------------

    def _extra_memory_bytes(self) -> int:
        return super()._extra_memory_bytes() + self.agent.memory_bytes()
