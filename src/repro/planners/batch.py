"""In-run worker pool for batched planner wakes.

A batched wake (see :meth:`repro.planners.base.Planner._plan_wake_batch`)
plans every leg of one tick independently against the wake's opening
reservation state.  Those candidate searches are embarrassingly parallel,
so — when ``PlannerConfig.batch_workers`` asks for it — they can fan out
across a small process pool *within a single run*, orthogonal to the
experiment matrix's per-cell pool.

Workers are spawned once per run with the immutable grid and config and
build their own heuristic-field / free-flow caches at start; each batched
wake then ships only the current reservation structure and the leg list.
The sharded reservation tables hold no grid reference precisely so this
per-wake pickle stays proportional to live reservations, not floor size.
Candidates come back as ordinary :class:`~repro.pathfinding.pipeline.LegPlan`
payloads and go through the exact same audit-then-commit loop as
in-process candidates, so the pool changes wall-clock only, never the
commit invariants.

The pool is **off by default** (``batch_workers=0``): on single-core
hosts (or small batches) the spawn/pickle overhead swamps the win, and
EATP opts out entirely (``parallel_batch_safe=False``) because its
cache-aided finisher memoises into the main process's shortest-path
cache.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Sequence, Tuple

from ..config import PlannerConfig
from ..pathfinding.free_flow import FreeFlowPathCache
from ..pathfinding.heuristics import (FieldArenaHandle, HeuristicFieldCache,
                                      attach_field_arena)
from ..pathfinding.pipeline import FallbackChain, LegPlan
from ..pathfinding.reservation import ReservationTable
from ..pathfinding.st_astar import SearchStats, find_path
from ..types import Cell, Tick
from ..warehouse.grid import Grid

#: Per-worker planning context, built once by the pool initializer.
_WORKER = None


class _WorkerContext:
    """One worker's long-lived planning state (grid-derived caches)."""

    def __init__(self, grid: Grid, config: PlannerConfig,
                 arena_handle: "FieldArenaHandle | None" = None) -> None:
        self.grid = grid
        self.config = config
        self.heuristics = HeuristicFieldCache(grid)
        self.free_flow = FreeFlowPathCache(grid, self.heuristics)
        if arena_handle is not None:
            try:
                self.heuristics.attach_arena(attach_field_arena(arena_handle))
            except (FileNotFoundError, OSError):
                # The owner unlinked (or never shipped) the block; the
                # worker floods its own fields — slower, bit-identical.
                pass

    def chain(self, reservation: ReservationTable,
              collected: List[SearchStats]) -> FallbackChain:
        """A fallback chain over this wake's shipped reservation state.

        Tier 1 mirrors ``Planner._find_leg`` minus the finisher hook
        (pool-safe planners run without one); successful tier-1 stats are
        appended to ``collected`` so the main process can still absorb
        them — sequential wakes absorb theirs at plan time.
        """

        def full_search(t: Tick, source: Cell, goal: Cell):
            stats = SearchStats()
            path = find_path(
                self.grid, reservation, source, goal, t,
                heuristic=self.heuristics.field(goal),
                max_expansions=self.config.max_search_expansions,
                stats=stats)
            collected.append(stats)
            return path

        return FallbackChain(
            grid=self.grid, reservation=reservation,
            heuristics=self.heuristics, config=self.config,
            full_search=full_search,
            finisher_factory=lambda goal: (None, 0),
            free_flow=self.free_flow)


def _init_worker(grid: Grid, config: PlannerConfig,
                 arena_handle=None) -> None:
    global _WORKER
    _WORKER = _WorkerContext(grid, config, arena_handle)


def _plan_chunk(payload) -> List[LegPlan]:
    """Plan one contiguous chunk of a wake's legs in a worker process."""
    reservation, t, legs = payload
    plans: List[LegPlan] = []
    for source, goal in legs:
        collected: List[SearchStats] = []
        chain = _WORKER.chain(reservation, collected)
        leg = chain.plan_leg(t, source, goal)
        if collected:
            leg.search_stats = leg.search_stats + tuple(collected)
        plans.append(leg)
    return plans


class LegPlanPool:
    """A spawn-based process pool planning batched-wake candidates.

    Parameters
    ----------
    grid, config:
        Shipped once to each worker at spawn (the immutable planning
        world).
    workers:
        Pool size; clamped to at least 1.
    arena_handle:
        Optional :class:`~repro.pathfinding.heuristics.FieldArenaHandle`
        naming a shared-memory block of prebuilt heuristic fields.
        Workers attach read-only instead of re-flooding each goal's
        field per process; ``None`` (and any stale handle) falls back to
        per-worker floods with identical results.
    """

    def __init__(self, grid: Grid, config: PlannerConfig,
                 workers: int, arena_handle=None) -> None:
        self._n_workers = max(1, workers)
        context = multiprocessing.get_context("spawn")
        self._pool = context.Pool(self._n_workers, initializer=_init_worker,
                                  initargs=(grid, config, arena_handle))

    def plan(self, reservation: ReservationTable, t: Tick,
             legs: Sequence[Tuple[Cell, Cell]]) -> List[LegPlan]:
        """Plan ``legs`` against ``reservation``, preserving leg order.

        Legs are split into one contiguous chunk per worker so the
        reservation state is pickled once per worker, not once per leg;
        ``Pool.map`` returns chunks in submission order, so the flattened
        result lines up with ``legs`` index for index.
        """
        n_chunks = min(self._n_workers, len(legs))
        size = -(-len(legs) // n_chunks)  # ceil division
        chunks = [legs[i:i + size] for i in range(0, len(legs), size)]
        results = self._pool.map(
            _plan_chunk, [(reservation, t, chunk) for chunk in chunks])
        return [leg for chunk in results for leg in chunk]

    def close(self) -> None:
        self._pool.close()
        self._pool.join()
