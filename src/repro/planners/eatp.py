"""Efficient Adaptive Task Planning — Algorithm 3 (paper Sec. VI, Fig. 8).

ATP plus the three efficiency designs:

* **Flip requesting side (Sec. VI-A).**  Instead of sorting all racks by
  value, iterate idle robots and probe each robot's K closest racks from a
  static KNN index over the fixed rack homes; per robot, take the first
  rack the ε-greedy policy accepts.  Selection drops from
  O(|R| log |R|) to O(|A|·K).
* **Conflict Detection Table (Sec. VI-B).**  The reservation structure is
  the sparse per-cell timestamp table instead of the dense time-expanded
  graph — same answers, O(HW) space.
* **Cache-aided path finding (Sec. VI-B).**  Once a spatiotemporal A* node
  pops within Manhattan distance L of the goal, the cached conflict-
  oblivious shortest path is followed with waits inserted until each next
  step is conflict-free.

These trade a sliver of solution quality (the paper measures < 1% makespan
loss vs. ATP) for the large STC/PTC/MC wins of Figs. 11–12.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..config import PlannerConfig
from ..pathfinding.cache import ShortestPathCache, make_wait_finisher
from ..pathfinding.cdt import (ConflictDetectionTable,
                               ShardedConflictDetectionTable)
from ..pathfinding.reservation import ReservationTable
from ..rl.mdp import ACTION_REQUEST, ACTION_WAIT
from ..types import Cell, Tick
from ..warehouse.entities import Rack, RackPhase, Robot
from ..warehouse.knn import StaticRackKNN
from ..warehouse.state import WarehouseState
from .atp import AdaptiveTaskPlanner
from .base import SelectionEntry


class EfficientAdaptiveTaskPlanner(AdaptiveTaskPlanner):
    """Algorithm 3: ATP with flip requesting, CDT, and the path cache."""

    name = "EATP"

    #: The cache-aided finisher memoises into the shortest-path cache at
    #: plan time; a worker process would grow its own divergent cache (and
    #: memory metric), so EATP's batched wakes always plan in-process.
    parallel_batch_safe = False

    def __init__(self, state: WarehouseState,
                 config: Optional[PlannerConfig] = None) -> None:
        super().__init__(state, config)
        self.knn = StaticRackKNN(
            rack_homes=[rack.home for rack in state.racks],
            width=self.grid.width, height=self.grid.height,
            k=self.config.knn_k)
        self.cache = ShortestPathCache(self.grid, self.config.cache_threshold)
        self.cache.attach_fields(self.heuristics)
        #: Memoised (finisher, trigger) per goal — the closure reads the
        #: cache and reservation only at call time, so one per distinct
        #: goal serves every tier of every leg (no per-leg allocation).
        self._finishers = {}

    # -- checkpointing ----------------------------------------------------------

    #: The finisher memo holds closures, so it cannot cross a pickle
    #: boundary; entries are rebuilt lazily on first use and read the
    #: (pickled) cache and reservation only at call time, so a restored
    #: planner behaves identically.  ``self.cache`` itself — which *is*
    #: charged to the MC metric — is plain data and pickles as-is.
    _UNPICKLED = AdaptiveTaskPlanner._UNPICKLED + ("_finishers",)

    def __setstate__(self, state) -> None:
        super().__setstate__(state)
        self._finishers = {}
        # The restored cache lost its field oracle (dropped at pickle
        # time with the rest of the unpicklable closures); re-point it at
        # the freshly rebuilt heuristic cache.
        if getattr(self, "cache", None) is not None:
            self.cache.attach_fields(self.heuristics)

    # -- reservation: the CDT replaces the spatiotemporal graph ---------------

    def _make_reservation(self) -> ReservationTable:
        if self.sharded_reservations:
            return ShardedConflictDetectionTable(self.config.shard_tile_bits)
        # The vectorised audits only pay off on paper-scale floors; below
        # the gate this is the seed's exact table (and the argless call
        # keeps the legacy-table swap of the equivalence suite working).
        if self.paper_scale:
            return ConflictDetectionTable(vector_audit=True)
        return ConflictDetectionTable()

    # -- Alg. 3 selection: flip requesting --------------------------------------

    def _select(self, t: Tick, racks: List[Rack],
                robots: List[Robot]) -> List[SelectionEntry]:
        if self.agent.use_approximation():
            # Alg. 3 line 8 — identical greedy seeding to ATP.
            return self._select_greedy(racks, len(robots))
        return self._select_flipped(racks, robots)

    def _select_flipped(self, racks: List[Rack],
                        robots: List[Robot]) -> List[SelectionEntry]:
        """Alg. 3 lines 10–13: per-robot probe of its K closest racks.

        Candidates are the selectable racks among the robot's K nearest
        homes, examined in the agent's urgency order (most costly to defer
        first) — the same examination order ATP applies globally, here
        restricted to the robot's neighbourhood so selection stays
        O(|A|·K).  The first candidate the ε-greedy policy accepts is
        claimed; if it refuses all of them the robot idles this timestamp.
        """
        unclaimed: Set[int] = {rack.rack_id for rack in racks}
        entries: List[SelectionEntry] = []
        # Serve robots whose best local candidate is most urgent first, so
        # a rack two robots can reach goes to the one that values it most —
        # still O(|A|·K + |A| log |A|), preserving the Sec. VI-A bound.
        per_robot = []
        for robot in robots:
            candidates = [self.state.racks[rack_id]
                          for rack_id in self.knn.nearest(robot.location)
                          if rack_id in unclaimed]
            observed = [(self.observe(rack), rack) for rack in candidates]
            observed.sort(key=lambda pair: (self.agent.priority(pair[0]),
                                            pair[1].rack_id))
            best = (self.agent.priority(observed[0][0])
                    if observed else float("inf"))
            per_robot.append((best, robot.robot_id, robot, observed))
        per_robot.sort(key=lambda entry: entry[:2])
        for __, __, robot, observed in per_robot:
            for observation, rack in observed:
                if rack.rack_id not in unclaimed:
                    continue
                action = self.agent.choose_action(observation)
                if action == ACTION_REQUEST:
                    entries.append(SelectionEntry(rack=rack, robot=robot))
                    self.agent.update(observation, ACTION_REQUEST)
                    unclaimed.discard(rack.rack_id)
                    break  # Alg. 3 line 13: one rack per robot.
                self.agent.update(observation, ACTION_WAIT)
        return entries

    # -- Alg. 3 path finding: CDT + cache-aided A* --------------------------------

    def _make_finisher(self, goal: Cell):
        """The Sec. VI-B cache-aided finisher, for every search tier.

        Hooked through the base extension point so the tier-0 fast path,
        the tier-1 full search *and* the windowed fallback all finish
        through the cache; the wait-following tail is total-wait-capped
        (see :func:`~repro.pathfinding.cache.follow_with_waits`) so it
        cannot livelock against the dense Fleet-200 reservation traffic.
        Memoised per goal: goals are a bounded set (rack homes +
        pickers) and the closure captures only the long-lived cache and
        reservation structure, so a leg never allocates one.
        """
        if self.cache.threshold <= 0:
            return None, 0
        entry = self._finishers.get(goal)
        if entry is None:
            if len(self._finishers) >= 1024:  # same hygiene cap as the
                self._finishers.clear()       # field/descent caches
            entry = (make_wait_finisher(self.cache, goal, self.reservation),
                     self.cache.threshold)
            self._finishers[goal] = entry
        return entry

    # -- memory ---------------------------------------------------------------------

    def _extra_memory_bytes(self) -> int:
        return (super()._extra_memory_bytes()
                + self.knn.memory_bytes()
                + self.cache.memory_bytes())
