"""The paper's five planners plus the shared planning scaffolding."""

from .atp import AdaptiveTaskPlanner
from .base import Planner, PlannerStats, SelectionEntry
from .eatp import EfficientAdaptiveTaskPlanner
from .greedy import most_slack_first
from .ilp import IlpPlanner
from .lef import LeastExpirationFirstPlanner
from .ntp import NaiveTaskPlanner
from .scheme import Assignment, PlanningScheme

#: Registry used by experiments and the CLI: name -> planner class.
PLANNERS = {
    "NTP": NaiveTaskPlanner,
    "LEF": LeastExpirationFirstPlanner,
    "ILP": IlpPlanner,
    "ATP": AdaptiveTaskPlanner,
    "EATP": EfficientAdaptiveTaskPlanner,
}

__all__ = [
    "AdaptiveTaskPlanner",
    "Assignment",
    "EfficientAdaptiveTaskPlanner",
    "IlpPlanner",
    "LeastExpirationFirstPlanner",
    "NaiveTaskPlanner",
    "PLANNERS",
    "Planner",
    "PlannerStats",
    "PlanningScheme",
    "SelectionEntry",
    "most_slack_first",
]
