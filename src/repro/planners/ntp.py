"""Naive Task Planning — Algorithm 1, the extended state of the art [7].

Extends Ma et al.'s online MAPF dispatcher to TPRW the way the paper's
Sec. III-A describes: instead of planning for the robot with the least
pickup time, plan for racks whose picker is *most slack* (smallest finish
time f_p, Eq. 3), since a slack picker implies less queuing.  Every
selectable rack is dispatched as soon as a robot is free — no batching —
which is exactly the greedy behaviour the Sec. III-B bad case punishes.
"""

from __future__ import annotations

from typing import List

from ..types import Tick
from ..warehouse.entities import Rack, Robot
from .base import Planner, SelectionEntry


class NaiveTaskPlanner(Planner):
    """Algorithm 1: most-slack-picker-first greedy dispatch."""

    name = "NTP"

    def _select(self, t: Tick, racks: List[Rack],
                robots: List[Robot]) -> List[SelectionEntry]:
        entries: List[SelectionEntry] = []
        budget = len(robots)

        # Alg. 1 line 2: pickers ascending by finish time f_p.
        pickers = sorted({rack.picker_id for rack in racks},
                         key=lambda pid: (self.picker_finish_time(pid), pid))
        racks_by_picker = {}
        for rack in racks:
            racks_by_picker.setdefault(rack.picker_id, []).append(rack)

        for picker_id in pickers:
            # Deterministic inner order: rack id (the paper leaves it free).
            for rack in sorted(racks_by_picker[picker_id],
                               key=lambda r: r.rack_id):
                if len(entries) == budget:
                    return entries
                entries.append(SelectionEntry(rack=rack))
        return entries
