"""The planner base class: reservation plumbing, timing, shared helpers.

Every algorithm in the paper's evaluation (NTP, LEF, ILP, ATP, EATP) shares
the same skeleton: a *selection* step that decides which racks to fulfil
now, and a *path-finding* step that routes robots conflict-free.  The base
class owns everything common — the reservation structure, the heuristic
cache, leg planning, STC/PTC accounting, memory introspection — so each
subclass is exactly its selection (and, for EATP, its path-finding
optimisations).

Timing contract: selection work must run inside ``self._timed_selection()``
and path searches inside ``self._timed_planning()``; the simulator reads the
accumulated totals for the Fig. 11 experiments.
"""

from __future__ import annotations

import abc
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..config import PAPER_SCALE_MIN_CELLS, PlannerConfig
from ..errors import PlanningError
from ..pathfinding.free_flow import FreeFlowPathCache
from ..pathfinding.heuristics import HeuristicFieldCache, attach_field_arena
from ..pathfinding.paths import Path
from ..pathfinding.pipeline import (FASTPATH_AUDIT_REJECT, FASTPATH_MISS,
                                    FASTPATH_RESCUE, TIER_FREE_FLOW,
                                    TIER_FULL, TIER_WINDOWED, FallbackChain,
                                    LegPlan)
from ..pathfinding.reservation import ReservationTable
from ..pathfinding.spatiotemporal_graph import (ShardedSpatiotemporalGraph,
                                                SpatiotemporalGraph)
from ..pathfinding.st_astar import SearchStats, find_path
from ..types import Cell, Tick, manhattan
from ..warehouse.entities import Rack, Robot
from ..warehouse.state import WarehouseState
from .scheme import Assignment, PlanningScheme


@dataclass
class PlannerStats:
    """Accumulated efficiency counters (the paper's STC / PTC inputs).

    The ``legs_*`` quartet is the tier histogram of the planning
    pipeline: every planned leg lands in exactly one bucket
    (``legs_free_flow + legs_full + legs_windowed + legs_wait ==
    legs_planned``), and ``horizon_replans`` counts the continuation legs
    the simulator requested when a partial (windowed or wait) leg ran
    out.  The fast-path trio is tier 0's own accounting:
    ``legs_free_flow`` are the hits, ``fastpath_audit_rejects`` counts
    candidates a reservation conflict sent to the full search, and
    ``fastpath_misses`` counts legs where no auditable candidate existed
    (unreachable goal, a declining cache finisher).  Tier-0 legs run no
    search, so ``search_expansions`` / ``search_peak_open`` only
    accumulate over the legs that actually searched.
    """

    selection_seconds: float = 0.0
    planning_seconds: float = 0.0
    schemes_emitted: int = 0
    assignments_emitted: int = 0
    legs_planned: int = 0
    legs_free_flow: int = 0
    legs_full: int = 0
    legs_windowed: int = 0
    legs_wait: int = 0
    fastpath_misses: int = 0
    fastpath_audit_rejects: int = 0
    horizon_replans: int = 0
    search_expansions: int = 0
    search_peak_open: int = 0
    cache_finished_legs: int = 0
    #: Batched planner wakes (see ``Planner._plan_wake_batch``): how many
    #: wakes planned their legs as one batch, how many legs rode in them,
    #: and how many candidates an audit rejected into a sequential replan.
    batched_wakes: int = 0
    batched_legs: int = 0
    batch_conflicts: int = 0
    #: Conflicted descents served by the paper-scale wait-following
    #: rescue (tier 0.5) instead of the full search; counted inside
    #: ``legs_free_flow`` in the tier histogram.
    rescued_legs: int = 0
    #: Which expansion loop answered the searches that actually ran (the
    #: two are bit-identical; see ``SearchStats.kernel``).  Tier-0 legs
    #: run no search and count in neither.
    searches_compiled: int = 0
    searches_python: int = 0
    #: Which reservation-mutation loop served the commits and purges (the
    #: two are bit-identical; see ``ReservationTable.mutation_kernel``).
    #: Legacy tables that predate the mutation kernel report neither.
    reserves_compiled: int = 0
    reserves_python: int = 0
    purges_compiled: int = 0
    purges_python: int = 0
    #: Which tier-0 plane extracted-and-audited the free-flow descents
    #: (the two are bit-identical; see ``LegPlan.descent_kernel``).  Legs
    #: that never entered tier 0 (``free_flow`` off) count in neither.
    descents_compiled: int = 0
    descents_python: int = 0


class Planner(abc.ABC):
    """Abstract TPRW planner.

    Parameters
    ----------
    state:
        The live warehouse the planner serves.  Planners keep a reference:
        the TPRW problem re-plans every timestamp over the same world.
    config:
        Shared knobs (see :class:`~repro.config.PlannerConfig`).

    Subclasses implement :meth:`_select` — returning the racks to fulfil
    and, optionally, pre-matched robots — while the base class turns the
    selection into a conflict-free :class:`PlanningScheme`.
    """

    #: Human-readable name used by experiment reports (override).
    name: str = "planner"

    #: Reservation-footprint cache (see :meth:`memory_bytes`): the last
    #: aggregate and the table ``mutation_stamp`` it was computed at.
    #: Class-level defaults so checkpoints pickled before the cache
    #: existed restore cleanly; ``None`` never matches a live stamp.
    _memory_stamp = None
    _memory_cache: int = 0
    #: High-water mark of :meth:`memory_bytes`, maintained at every leg
    #: commit (the only operation that grows the structures).
    _peak_memory: int = 0

    #: Handle of the shared heuristic-field arena this planner reads
    #: from, or ``None`` (fields flood locally).  Class-level default so
    #: checkpoints pickled before the arena existed restore cleanly.
    _arena_handle = None

    #: Whether the planner's leg planning can run in a worker process of
    #: the in-run batch pool.  Requires leg planning to be a pure function
    #: of (grid, config, reservation): EATP flips this off because its
    #: cache-aided finisher memoises into the shortest-path cache — worker
    #: processes would silently diverge from the main process's cache (and
    #: its Fig. 12 memory metric).
    parallel_batch_safe: bool = True

    def __init__(self, state: WarehouseState,
                 config: Optional[PlannerConfig] = None) -> None:
        self.state = state
        self.config = config if config is not None else PlannerConfig()
        self.grid = state.grid
        #: Paper-scale auto-gate: on floors of at least
        #: :data:`~repro.config.PAPER_SCALE_MIN_CELLS` cells the
        #: scalability machinery (region-sharded reservations, batched
        #: planner wakes) defaults on; every historical scenario sits far
        #: below, so their runs stay byte-identical.  Explicit config
        #: knobs override in either direction.
        self.paper_scale: bool = self.grid.n_cells >= PAPER_SCALE_MIN_CELLS
        self.sharded_reservations: bool = (
            self.config.reservation_sharding
            if self.config.reservation_sharding is not None
            else self.paper_scale)
        self.batch_planning: bool = (
            self.config.batch_planning
            if self.config.batch_planning is not None
            else self.paper_scale)
        self._batch_pool = None
        self.reservation: ReservationTable = self._make_reservation()
        #: Exact per-goal heuristic fields, shared by every leg to the
        #: same picker / rack home (one BFS per distinct goal, ever).
        self.heuristics = HeuristicFieldCache(self.grid)
        #: Tier-0 free-flow descent cache (memoised per (source, goal);
        #: invalidated in lockstep with the field cache).
        self.free_flow = FreeFlowPathCache(self.grid, self.heuristics)
        self.stats = PlannerStats()
        #: The windowed-horizon fallback chain every leg routes through.
        self.pipeline = self._build_pipeline()

    def _build_pipeline(self) -> FallbackChain:
        """The fallback chain over the planner's current structures.

        Tier 1 goes through ``self._find_leg`` *lazily* (a lambda, not a
        bound method) so the historical monkeypatch points — EATP in the
        seed-benchmark patches, tests — keep working.  Factored out of
        ``__init__`` because the chain captures closures over ``self``
        and therefore cannot cross a pickle boundary: checkpoint restore
        (see :meth:`__setstate__`) rebuilds it fresh.
        """
        return FallbackChain(
            grid=self.grid, reservation=self.reservation,
            heuristics=self.heuristics, config=self.config,
            full_search=lambda t, source, goal: self._find_leg(t, source,
                                                               goal),
            finisher_factory=lambda goal: self._make_finisher(goal),
            free_flow=self.free_flow)

    # -- checkpointing -----------------------------------------------------

    #: Attributes dropped from checkpoint payloads and rebuilt on restore.
    #: The pipeline captures closures over ``self``; the heuristic-field
    #: and free-flow caches hold closure/weakref invalidation listeners
    #: and are pure functions of the immutable grid (rebuilt entries are
    #: bit-identical, and neither is charged to the MC metric); the batch
    #: pool is a live process pool.  Everything that carries *state* —
    #: the reservation structure, the RNG, the learner, EATP's
    #: shortest-path cache (which IS charged to MC) — is pickled as-is.
    _UNPICKLED = ("pipeline", "heuristics", "free_flow", "_batch_pool")

    def __getstate__(self):
        state = self.__dict__.copy()
        for name in self._UNPICKLED:
            state[name] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.heuristics = HeuristicFieldCache(self.grid)
        self.free_flow = FreeFlowPathCache(self.grid, self.heuristics)
        handle = self.__dict__.get("_arena_handle")
        if handle is not None:
            # Best effort: the arena outlives checkpoints taken in the
            # same process (service-mode restore), but a checkpoint
            # restored after the owner unlinked — or on another host —
            # rebuilds fields from the grid instead, bit-identically.
            try:
                self.heuristics.attach_arena(attach_field_arena(handle))
            except (FileNotFoundError, OSError):
                self._arena_handle = None
        self.pipeline = self._build_pipeline()

    def attach_field_arena(self, arena) -> None:
        """Read heuristic fields from a shared :class:`FieldArena`.

        The harness calls this right after construction so matrix
        workers (and this planner's own batch pool, which inherits the
        handle at spawn) reuse the parent-built int32 distance fields
        over shared memory instead of re-flooding them per process.
        Fields for goals outside the arena still flood locally; every
        answer is bit-identical either way.
        """
        self._arena_handle = arena.handle()
        self.heuristics.attach_arena(arena)

    # -- extension points ------------------------------------------------------

    def _make_reservation(self) -> ReservationTable:
        """Reservation structure; ATP and the baselines use the ST graph.

        With sharding resolved on (explicitly, or by the paper-scale
        auto-gate) the region-sharded variant replaces the global one —
        probe-for-probe identical answers (the equivalence suite pins it),
        but only the tiles a leg actually crosses are materialised, which
        is what lets the dense-layer family survive the 541×302 floor.
        """
        if self.sharded_reservations:
            return ShardedSpatiotemporalGraph(self.config.shard_tile_bits)
        return SpatiotemporalGraph(self.grid)

    @abc.abstractmethod
    def _select(self, t: Tick, racks: List[Rack],
                robots: List[Robot]) -> List["SelectionEntry"]:
        """Choose racks (optionally with robots) to fulfil at ``t``.

        Returns at most ``len(robots)`` entries; racks and robots must be
        unique across entries.
        """

    # -- the public planning API -----------------------------------------------

    def plan(self, t: Tick, state: Optional[WarehouseState] = None) -> PlanningScheme:
        """Emit ``U_t``: selection step then path-finding step.

        ``state`` defaults to the planner's bound state; passing it
        explicitly exists for tests that drive a planner standalone.
        """
        world = state if state is not None else self.state
        scheme = PlanningScheme(timestamp=t)

        robots = world.idle_robots()
        racks = world.selectable_racks()
        if not robots or not racks:
            return scheme

        with self._timed_selection():
            entries = self._select(t, racks, robots)

        if len(entries) > len(robots):
            raise PlanningError(
                f"{self.name} selected {len(entries)} racks for "
                f"{len(robots)} idle robots")

        # Resolve every (robot, rack) pair before planning any leg.
        # Resolution reads only robot locations and the availability set —
        # never the reservation structure — so hoisting it out of the
        # planning loop is behaviour-neutral, and it is what allows a
        # batched wake to see all of the tick's legs at once.
        available = {robot.robot_id: robot for robot in robots}
        resolved: List[tuple] = []
        for entry in entries:
            robot = entry.robot
            if robot is None:
                robot = self._closest_robot(entry.rack, available.values())
            if robot.robot_id not in available:
                raise PlanningError(
                    f"{self.name} reused robot {robot.robot_id} at t={t}")
            del available[robot.robot_id]
            resolved.append((robot, entry.rack))

        if self.batch_planning and len(resolved) >= self.config.batch_min_legs:
            paths = self._plan_wake_batch(
                t, [(robot.location, rack.home) for robot, rack in resolved])
        else:
            paths = [self._plan_leg_timed(t, robot.location, rack.home)
                     for robot, rack in resolved]
        for (robot, rack), path in zip(resolved, paths):
            scheme.add(Assignment(robot_id=robot.robot_id,
                                  rack_id=rack.rack_id,
                                  pickup_path=path))
        self.stats.schemes_emitted += 1
        self.stats.assignments_emitted += len(scheme)
        # End-of-wake high-water update: a selection can grow subclass
        # structures (ATP's Q-table) even when it commits no leg, so the
        # commit-time peak tracking alone would miss it.  O(1): the
        # reservation aggregate is stamp-cached and the extras hooks are
        # all constant-time.
        memory = self.memory_bytes()
        if memory > self._peak_memory:
            self._peak_memory = memory
        return scheme

    def plan_leg(self, t: Tick, source: Cell, goal: Cell) -> Path:
        """Plan a later mission leg (delivery or return) starting at ``t``.

        Reserved against — and inserted into — the planner's reservation
        structure like any pickup leg; counted in PTC.  The returned path
        may be *partial* (a windowed prefix or a wait-in-place, see
        :mod:`repro.pathfinding.pipeline`): it then ends short of
        ``goal`` and the simulator must call :meth:`continue_leg` from
        its last step when the robot gets there.
        """
        return self._plan_leg_timed(t, source, goal)

    def continue_leg(self, t: Tick, source: Cell, goal: Cell) -> Path:
        """Plan the continuation of a partial leg (a horizon replan).

        Identical to :meth:`plan_leg` except that it is counted as a
        horizon replan in the planner stats — the simulator calls it when
        a windowed prefix or a wait-out ends with the robot short of the
        leg's target.
        """
        self.stats.horizon_replans += 1
        return self._plan_leg_timed(t, source, goal)

    #: How many ticks between reservation purges (the paper executes the
    #: CDT update "periodically"; every tick would dominate small runs).
    PURGE_CADENCE = 32

    def advance(self, t_from: Tick, t_to: Tick) -> None:
        """Housekeeping for the span ``[t_from, t_to]`` of elapsed ticks.

        The simulator's wake contract: :meth:`plan` is invoked only at
        ticks where an idle robot and a selectable rack coexist (at every
        other tick it would return an empty scheme without touching the
        learner, the RNG, or the stats), and the per-tick ``end_of_tick``
        housekeeping hook is folded into this span-aware call — the
        event-driven engine jumps over quiet spans and hands the whole
        span to the planner at once.

        The base implementation performs the periodic reservation purge
        (the CDT "update" operation / the ST-graph layer eviction the
        paper calls eliminating passed timestamps) exactly as the
        per-tick loop did: purges fire at every multiple of
        :data:`PURGE_CADENCE` inside the span, and since
        ``purge_before`` with the latest floor subsumes the earlier
        floors, one call at the span's last cadence tick is equivalent.

        Subclasses that need genuinely per-tick state (none of the
        paper's five planners do — ATP's per-tick WAIT updates live in
        :meth:`plan`, which still runs at every tick where they can have
        an effect) must expand the span themselves.
        """
        last_cadence = (t_to // self.PURGE_CADENCE) * self.PURGE_CADENCE
        if last_cadence < t_from:
            return
        floor = last_cadence - self.config.reservation_horizon
        if floor > 0:
            self.reservation.purge_before(floor)
            kernel = getattr(self.reservation, "mutation_kernel", "")
            if kernel == "compiled":
                self.stats.purges_compiled += 1
            elif kernel == "python":
                self.stats.purges_python += 1

    def end_of_tick(self, t: Tick) -> None:
        """Single-tick :meth:`advance` (kept for external callers)."""
        self.advance(t, t)

    def memory_bytes(self) -> int:
        """Total live structure footprint — the Fig. 12 MC sample.

        The reservation aggregate is cached against the table's
        ``mutation_stamp`` (bumped by every reserve / unreserve / purge),
        so repeated samples between mutations cost one integer compare.
        Only the reservation term is cached: the subclass extras are all
        O(1) *and* can mutate outside the stamp's visibility (ATP's
        learner updates during selection), so they are re-read fresh.
        Legacy tables without a stamp (``mutation_stamp is None``) are
        never cached.
        """
        stamp = getattr(self.reservation, "mutation_stamp", None)
        if stamp is None:
            reserved = self.reservation.memory_bytes()
        elif stamp == self._memory_stamp:
            reserved = self._memory_cache
        else:
            reserved = self.reservation.memory_bytes()
            self._memory_cache = reserved
            self._memory_stamp = stamp
        return reserved + self._extra_memory_bytes()

    @property
    def peak_memory_bytes(self) -> int:
        """High-water mark of :meth:`memory_bytes` across all commits.

        Maintained inside :meth:`_commit_leg`; the engine folds it into
        the run's recorded peak so checkpoint-boundary memory sampling
        (instead of per-event) cannot under-report the maximum.
        """
        return self._peak_memory

    def _extra_memory_bytes(self) -> int:
        """Subclass hook for additional structures (cache, Q-table, KNN).

        Deliberately excludes the heuristic-field cache: it is a
        cross-cutting implementation acceleration applied identically to
        every planner, not one of the paper's per-algorithm structures,
        and folding it in would swamp the Fig. 12 MC comparison the
        metric exists to reproduce.  Inspect it separately via
        ``planner.heuristics.memory_bytes()``.
        """
        return 0

    # -- shared helpers -----------------------------------------------------------

    def _closest_robot(self, rack: Rack, robots: Iterable[Robot]) -> Robot:
        """The idle robot nearest to the rack's home (Alg. 1 line 6)."""
        best = min(robots,
                   key=lambda robot: (manhattan(robot.location, rack.home),
                                      robot.robot_id))
        return best

    def _plan_leg_timed(self, t: Tick, source: Cell, goal: Cell) -> Path:
        started = time.perf_counter()
        try:
            leg = self.pipeline.plan_leg(t, source, goal)
        finally:
            self.stats.planning_seconds += time.perf_counter() - started
        self._commit_leg(leg)
        return leg.path

    # -- batched planner wakes ----------------------------------------------

    def _plan_wake_batch(self, t: Tick,
                         legs: Sequence[Tuple[Cell, Cell]]) -> List[Path]:
        """Plan one wake's legs as a batch: candidates first, commits after.

        Every leg is planned *independently* against the wake's opening
        reservation state (optionally fanned across the worker pool), then
        committed in resolution order with an optimistic audit: a
        candidate whose committed portion survives the audit against the
        now-partially-committed table is exactly as conflict-free as a
        sequentially planned leg, so it commits as-is; a candidate the
        audit rejects is replanned once against the live table — which
        *is* the sequential contract for that leg — and the replan's
        result commits unconditionally (the pipeline plans against live
        reservations, so it cannot conflict).  The first leg never needs
        the audit: nothing has committed since its candidate was planned.

        Sequential and batched wakes therefore uphold the same invariant —
        every committed leg is conflict-free against all earlier commits —
        but batched candidates are planned against slightly staler
        reservations, so individual paths may differ from a sequential
        run's (a deliberate, documented trade: below the paper-scale gate
        batching defaults off and runs stay byte-identical).  Candidate
        generation and conflict replans are timed into
        ``planning_seconds``; commits stay outside the timer, exactly like
        the sequential path.
        """
        stats = self.stats
        stats.batched_wakes += 1
        stats.batched_legs += len(legs)
        pool = self._batch_planner_pool()
        started = time.perf_counter()
        try:
            if pool is not None:
                candidates = pool.plan(self.reservation, t, legs)
            else:
                candidates = [self.pipeline.plan_leg(t, source, goal)
                              for source, goal in legs]
        finally:
            stats.planning_seconds += time.perf_counter() - started
        paths: List[Path] = []
        for index, leg in enumerate(candidates):
            if index and not self._commit_clean(leg):
                stats.batch_conflicts += 1
                source, goal = legs[index]
                started = time.perf_counter()
                try:
                    leg = self.pipeline.plan_leg(t, source, goal)
                finally:
                    stats.planning_seconds += time.perf_counter() - started
            self._commit_leg(leg)
            paths.append(leg.path)
        return paths

    def _commit_clean(self, leg: LegPlan) -> bool:
        """Whether a batch candidate's committed portion is conflict-free.

        Audits exactly what :meth:`_commit_leg` would insert: the commit
        path truncated at the windowed-commit bound (``reserve_path``
        stores vertices through ``commit_until`` and edges departing
        before it; the truncated path's audit probes precisely that set).
        """
        commit = leg.commit_path
        if leg.commit_until is not None:
            commit = commit.truncate_at(leg.commit_until)
        return self.reservation.audit_path(commit)

    def _batch_planner_pool(self):
        """The lazily built in-run worker pool, or ``None`` (the default).

        Built on the first batched wake when ``config.batch_workers`` asks
        for workers and the planner's leg planning is pool-safe; the pool
        ships the immutable grid once at worker start and the reservation
        state per wake, so it only pays off when candidate search work
        dominates (many simultaneous legs on a large floor).
        """
        if (self._batch_pool is None and self.config.batch_workers > 0
                and self.parallel_batch_safe):
            from .batch import LegPlanPool
            self._batch_pool = LegPlanPool(self.grid, self.config,
                                           self.config.batch_workers,
                                           arena_handle=self._arena_handle)
        return self._batch_pool

    def close(self) -> None:
        """Release run-scoped resources (the batch worker pool)."""
        if self._batch_pool is not None:
            self._batch_pool.close()
            self._batch_pool = None

    def _commit_leg(self, leg: LegPlan) -> None:
        """Reserve a leg plan and fold it into the planner counters."""
        for search_stats in leg.search_stats:
            self._absorb_search_stats(search_stats)
        if leg.commit_until is None:
            # The classic full-path commit — positional call, so the
            # frozen seed reservation structures (which predate windowed
            # commits) stay drop-in compatible for the benchmarks.
            self.reservation.reserve_path(leg.commit_path)
        else:
            self.reservation.reserve_path(leg.commit_path, leg.commit_until)
        kernel = getattr(self.reservation, "mutation_kernel", "")
        if kernel == "compiled":
            self.stats.reserves_compiled += 1
        elif kernel == "python":
            self.stats.reserves_python += 1
        memory = self.memory_bytes()
        if memory > self._peak_memory:
            self._peak_memory = memory
        self.stats.legs_planned += 1
        if leg.tier == TIER_FREE_FLOW:
            self.stats.legs_free_flow += 1
        elif leg.tier == TIER_FULL:
            self.stats.legs_full += 1
        elif leg.tier == TIER_WINDOWED:
            self.stats.legs_windowed += 1
        else:
            self.stats.legs_wait += 1
        if leg.fastpath == FASTPATH_MISS:
            self.stats.fastpath_misses += 1
        elif leg.fastpath == FASTPATH_AUDIT_REJECT:
            self.stats.fastpath_audit_rejects += 1
        elif leg.fastpath == FASTPATH_RESCUE:
            self.stats.rescued_legs += 1
        dkernel = getattr(leg, "descent_kernel", "")
        if dkernel == "compiled":
            self.stats.descents_compiled += 1
        elif dkernel == "python":
            self.stats.descents_python += 1

    def _find_leg(self, t: Tick, source: Cell, goal: Cell) -> Path:
        """Tier-1 single-leg search (the chain's full ST-A*).

        Uses the cached exact heuristic field, which equals the paper's
        Manhattan h-value (Sec. V-C) on the open rack-to-picker layouts
        and stays admissible (tighter) on obstructed floors — with no
        per-leg closure allocation.  The finisher hook comes from
        :meth:`_make_finisher` (EATP's cache-aided tail; disabled in the
        base).  Raises :class:`~repro.errors.PathNotFoundError` (stats
        attached) on exhaustion; the fallback chain recovers.
        """
        search_stats = SearchStats()
        finisher, trigger = self._make_finisher(goal)
        path = find_path(self.grid, self.reservation, source, goal, t,
                         heuristic=self.heuristics.field(goal),
                         max_expansions=self.config.max_search_expansions,
                         finisher=finisher, finisher_trigger=trigger,
                         stats=search_stats)
        self._absorb_search_stats(search_stats)
        return path

    def _make_finisher(self, goal: Cell):
        """``(finisher, trigger)`` for searches toward ``goal``.

        The base planners run without the Sec. VI-B cache; EATP overrides
        this to supply its wait-following finisher, which both the tier-1
        full search and the windowed fallback then use.
        """
        return None, 0

    def _absorb_search_stats(self, search_stats: SearchStats) -> None:
        self.stats.search_expansions += search_stats.expansions
        self.stats.search_peak_open = max(self.stats.search_peak_open,
                                          search_stats.peak_open)
        if search_stats.cache_finished:
            self.stats.cache_finished_legs += 1
        if search_stats.kernel == "compiled":
            self.stats.searches_compiled += 1
        elif search_stats.kernel == "python":
            self.stats.searches_python += 1

    def picker_finish_time(self, picker_id: int) -> int:
        """f_p of Eq. 3 for one picker."""
        return self.state.pickers[picker_id].finish_time_estimate

    def transport_distance(self, rack: Rack) -> int:
        """d(l_r, l_p): rack home to its picker station.

        Manhattan, which equals the true grid distance on the open
        layouts this library generates (no structural obstacles).
        """
        picker = self.state.pickers[rack.picker_id]
        return manhattan(rack.home, picker.location)

    @contextmanager
    def _timed_selection(self):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.stats.selection_seconds += time.perf_counter() - started


@dataclass
class SelectionEntry:
    """One selected rack, optionally pre-matched to a robot (EATP flip)."""

    rack: Rack
    robot: Optional[Robot] = None
