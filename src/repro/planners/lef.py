"""Least Expiration First — the spatiotemporal task-selection baseline [17].

Deng et al.'s selector prefers tasks with the least remaining tolerance.
Warehouse items carry no expiry, so the paper's extension treats every item
as equally tolerant, reducing LEF to "serve racks whose items emerged
earliest" — global FIFO over item arrival times.
"""

from __future__ import annotations

from typing import List

from ..types import Tick
from ..warehouse.entities import Rack, Robot
from .base import Planner, SelectionEntry


class LeastExpirationFirstPlanner(Planner):
    """FIFO-by-oldest-item rack selection."""

    name = "LEF"

    def _select(self, t: Tick, racks: List[Rack],
                robots: List[Robot]) -> List[SelectionEntry]:
        budget = len(robots)
        # Every selectable rack has pending items, so oldest_arrival is set.
        ordered = sorted(racks,
                         key=lambda rack: (rack.oldest_arrival, rack.rack_id))
        return [SelectionEntry(rack=rack) for rack in ordered[:budget]]
