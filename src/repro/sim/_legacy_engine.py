"""The frozen per-tick simulation engine (pre-event-calendar reference).

This is the engine exactly as it shipped before the event-driven refactor:
an unconditional per-tick loop that touches every robot, picker, and the
planner every tick.  It is kept — like ``pathfinding/_legacy.py`` for the
search core — as the behavioural reference the equivalence suite and the
``bench_engine`` kernel compare against.  The only adaptation is the
planner housekeeping call, which now goes through the span-aware
``advance(t, t)`` hook (``end_of_tick`` delegates to it, so the semantics
per tick are identical).

Do not extend this module; new behaviour goes into
:mod:`repro.sim.engine`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import SimulationConfig
from ..errors import SimulationError
from ..planners.base import Planner
from ..sim.engine import SimulationResult
from ..sim.metrics import (MetricsRecorder, RunMetrics,
                           picker_processing_rate, robot_working_rate)
from ..sim.missions import Mission, MissionStage
from ..sim.queueing import enqueue_rack, process_picker_tick
from ..sim.trace import BottleneckTrace
from ..types import Tick
from ..warehouse.entities import Item, RackPhase, RobotState
from ..warehouse.state import WarehouseState


class LegacySimulation:
    """One planner × one workload, advanced one tick at a time.

    Same construction contract as :class:`repro.sim.engine.Simulation`;
    see that class for parameter documentation.
    """

    def __init__(self, state: WarehouseState, planner: Planner,
                 items: Sequence[Item],
                 config: Optional[SimulationConfig] = None) -> None:
        if planner.state is not state:
            raise SimulationError(
                "planner must be constructed over the simulation's state")
        if not items:
            raise SimulationError("workload is empty")
        self.state = state
        self.planner = planner
        self.config = config if config is not None else SimulationConfig()
        self._items = sorted(items, key=lambda item: (item.arrival, item.item_id))
        self._next_item = 0
        self._active: Dict[int, Mission] = {}   # keyed by robot id
        self._batch_time_of: Dict[int, int] = {}  # rack id -> current batch time
        self._mission_of_rack: Dict[int, Mission] = {}
        self._completed: List[Mission] = []
        self._recorder = MetricsRecorder(len(self._items),
                                         self.config.metrics_checkpoints)
        self._trace = (BottleneckTrace()
                       if self.config.record_bottleneck_trace else None)
        self._paths: List = []
        self._path_owners: List[int] = []
        self._last_return: Tick = 0

    # -- the main loop -----------------------------------------------------

    def run(self) -> SimulationResult:
        """Run until the workload drains; return the collected metrics."""
        t: Tick = 0
        while True:
            self._inject_arrivals(t)
            if self._finished():
                break
            if t >= self.config.max_ticks:
                raise SimulationError(
                    f"simulation exceeded max_ticks={self.config.max_ticks} "
                    f"({self.state.total_pending_items()} items pending, "
                    f"{len(self._active)} missions active)")
            self._dispatch(t)
            self._advance_motion(t)
            self._advance_pickers(t)
            self._account(t)
            self.planner.advance(t, t)
            t += 1
        return self._result(t)

    def _finished(self) -> bool:
        return (self._next_item >= len(self._items)
                and self.state.total_pending_items() == 0
                and not self._active)

    # -- stage 1: arrivals ----------------------------------------------------

    def _inject_arrivals(self, t: Tick) -> None:
        while (self._next_item < len(self._items)
               and self._items[self._next_item].arrival <= t):
            self.state.deliver_item(self._items[self._next_item])
            self._next_item += 1

    # -- stage 2: planning ------------------------------------------------------

    def _dispatch(self, t: Tick) -> None:
        scheme = self.planner.plan(t)
        for assignment in scheme:
            robot = self.state.robots[assignment.robot_id]
            rack = self.state.racks[assignment.rack_id]
            if not robot.is_idle:
                raise SimulationError(
                    f"planner dispatched busy robot {robot.robot_id}")
            if rack.phase is not RackPhase.STORED or not rack.has_pending:
                raise SimulationError(
                    f"planner selected unavailable rack {rack.rack_id}")
            batch = rack.take_batch()
            if self.config.collect_paths:
                self._paths.append(assignment.pickup_path)
                self._path_owners.append(robot.robot_id)
            mission = Mission(robot_id=robot.robot_id, rack_id=rack.rack_id,
                              batch=batch, path=assignment.pickup_path,
                              dispatched_at=t, stage_entered_at=t)
            rack.phase = RackPhase.IN_TRANSIT
            robot.state = RobotState.TO_RACK
            robot.rack_id = rack.rack_id
            self._active[robot.robot_id] = mission
            self._mission_of_rack[rack.rack_id] = mission
            self._batch_time_of[rack.rack_id] = mission.batch_processing_time
            # A robot already parked beneath the rack completes its pickup
            # leg instantly.
            if assignment.pickup_path.end_time <= t:
                self._complete_leg(mission, t)

    # -- stage 3: motion -----------------------------------------------------------

    def _advance_motion(self, t: Tick) -> None:
        for mission in list(self._active.values()):
            if not mission.stage.moving:
                continue
            path = mission.path
            if path is None:
                raise SimulationError(
                    f"moving mission (rack {mission.rack_id}) has no path")
            robot = self.state.robots[mission.robot_id]
            robot.location = path.cell_at(t + 1)
            if t + 1 >= path.end_time:
                self._complete_leg(mission, t + 1)

    def _complete_leg(self, mission: Mission, now: Tick) -> None:
        robot = self.state.robots[mission.robot_id]
        rack = self.state.racks[mission.rack_id]
        picker = self.state.pickers[rack.picker_id]

        # Fail-fast guard (the one post-freeze addition besides the
        # ``advance`` adaptation): the windowed planning pipeline can
        # emit *partial* legs ending short of the stage target, which
        # only the event-driven engine knows how to continue.  Before
        # the pipeline this situation raised ``PathNotFoundError`` in
        # the planner; silently transitioning the stage here would
        # teleport the robot instead.
        if mission.stage.moving and mission.path is not None:
            target = (picker.location
                      if mission.stage is MissionStage.TO_PICKER
                      else rack.home)
            if mission.path.goal != target:
                raise SimulationError(
                    f"the frozen per-tick engine cannot execute partial "
                    f"legs (leg for rack {mission.rack_id} ends at "
                    f"{mission.path.goal}, stage target {target}); "
                    f"use repro.sim.engine.Simulation")

        if mission.stage is MissionStage.TO_RACK:
            path = self.planner.plan_leg(now, rack.home, picker.location)
            if self.config.collect_paths:
                self._paths.append(path)
                self._path_owners.append(mission.robot_id)
            mission.enter(MissionStage.TO_PICKER, now, path)
            robot.state = RobotState.TO_PICKER
            if path.end_time <= now:  # degenerate: rack home == picker cell
                self._complete_leg(mission, now)
        elif mission.stage is MissionStage.TO_PICKER:
            mission.enter(MissionStage.QUEUING, now)
            robot.state = RobotState.QUEUING
            enqueue_rack(picker, rack.rack_id,
                         self._batch_time_of[rack.rack_id])
        elif mission.stage is MissionStage.RETURNING:
            mission.enter(MissionStage.DONE, now)
            robot.state = RobotState.IDLE
            robot.rack_id = None
            robot.location = rack.home
            rack.phase = RackPhase.STORED
            rack.last_return = now
            self._last_return = max(self._last_return, now)
            del self._active[mission.robot_id]
            del self._mission_of_rack[mission.rack_id]
            del self._batch_time_of[mission.rack_id]
            self._completed.append(mission)
        else:
            raise SimulationError(
                f"leg completion in non-moving stage {mission.stage.value}")

    # -- stage 4: pickers --------------------------------------------------------------

    def _advance_pickers(self, t: Tick) -> None:
        for picker in self.state.pickers:
            started: List[int] = []
            completion = process_picker_tick(picker, t, self._batch_time_of,
                                             self.state.racks, started)
            for rack_id in started:
                mission = self._mission_of_rack[rack_id]
                mission.enter(MissionStage.PROCESSING, t)
                self.state.robots[mission.robot_id].state = RobotState.PROCESSING
            if completion is not None:
                mission = self._mission_of_rack[completion.rack_id]
                self._recorder.note_items_processed(mission.n_items)
                rack = self.state.racks[completion.rack_id]
                path = self.planner.plan_leg(completion.completed_at,
                                             picker.location, rack.home)
                if self.config.collect_paths:
                    self._paths.append(path)
                    self._path_owners.append(mission.robot_id)
                mission.enter(MissionStage.RETURNING,
                              completion.completed_at, path)
                self.state.robots[mission.robot_id].state = RobotState.RETURNING
                if path.end_time <= completion.completed_at:
                    self._complete_leg(mission, completion.completed_at)

    # -- stage 5: accounting ------------------------------------------------------------

    def _account(self, t: Tick) -> None:
        transporting = queuing = processing = 0
        for mission in self._active.values():
            if mission.stage.moving:
                transporting += 1
            elif mission.stage is MissionStage.QUEUING:
                queuing += 1
            elif mission.stage is MissionStage.PROCESSING:
                processing += 1
        for robot in self.state.robots:
            if robot.state.busy:
                robot.busy_ticks += 1
        if self._trace is not None:
            self._trace.record(t, transporting, queuing, processing)

        elapsed = t + 1
        self._recorder.maybe_checkpoint(
            tick=t,
            ppr=picker_processing_rate(
                [p.busy_ticks for p in self.state.pickers], elapsed),
            rwr=robot_working_rate(
                [r.busy_ticks for r in self.state.robots], elapsed),
            selection_seconds=self.planner.stats.selection_seconds,
            planning_seconds=self.planner.stats.planning_seconds,
            memory_bytes=self.planner.memory_bytes())

    # -- result assembly -----------------------------------------------------------------

    def _result(self, final_tick: Tick) -> SimulationResult:
        makespan = self._last_return
        metrics = RunMetrics(
            makespan=makespan,
            items_processed=self._recorder.items_processed,
            missions_completed=len(self._completed),
            ppr=picker_processing_rate(
                [p.busy_ticks for p in self.state.pickers],
                max(makespan, 1)),
            rwr=robot_working_rate(
                [r.busy_ticks for r in self.state.robots],
                max(makespan, 1)),
            selection_seconds=self.planner.stats.selection_seconds,
            planning_seconds=self.planner.stats.planning_seconds,
            peak_memory_bytes=self._recorder.peak_memory,
            checkpoints=list(self._recorder.samples),
            # Tier-0 fast-path counters: unlike the fallback histogram
            # (partial legs, which this frozen engine predates and
            # rejects), the fast path serves byte-identical *complete*
            # legs, so the live planner accumulates them here exactly as
            # under the event engine — thread them through so the
            # engine-equivalence suite compares like with like.
            fastpath={
                "free_flow_legs": self.planner.stats.legs_free_flow,
                "audit_rejects": self.planner.stats.fastpath_audit_rejects,
                "misses": self.planner.stats.fastpath_misses,
            },
        )
        if metrics.items_processed != len(self._items):
            raise SimulationError(
                f"drained simulation processed {metrics.items_processed} of "
                f"{len(self._items)} items — accounting bug")
        return SimulationResult(planner_name=self.planner.name,
                                metrics=metrics, trace=self._trace,
                                missions=self._completed, paths=self._paths,
                                path_owners=self._path_owners)
