"""Effectiveness and efficiency metrics (paper Sec. VII-A).

Effectiveness: **Makespan** (Eq. 1), **PPR** (Eq. 6, picker processing
rate) and **RWR** (Eq. 7, robot working rate).  Efficiency: **STC**
(selection time), **PTC** (planning time) and **MC** (memory consumption).

The Fig. 10–12 experiments plot these at ten evenly spaced *item-count*
checkpoints during the run; :class:`MetricsRecorder` snapshots each metric
the moment the cumulative processed-item count crosses a checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..types import Tick

#: Keys of the fallback-tier accounting attached to run metrics; a
#: missing dict (results produced by the frozen legacy engine, or stored
#: before PR 4) normalises to all-zero, which is also what any run that
#: never needed a fallback reports.
FALLBACK_KEYS = ("windowed_legs", "wait_legs", "horizon_replans")

#: Keys of the tier-0 fast-path accounting attached to run metrics
#: (free-flow legs served without searching, candidates a reservation
#: audit rejected, legs with no auditable candidate).  Same normalisation
#: contract as :data:`FALLBACK_KEYS`: a missing dict — results stored
#: before the fast path existed — reads all-zero.  The counters are
#: deterministic (they depend only on the run's seeds, never on timing),
#: so they survive :func:`~repro.sim.serialize.deterministic_view` and
#: compare exactly across serial and worker-pool runs.
FASTPATH_KEYS = ("free_flow_legs", "audit_rejects", "misses")

#: Keys of the batched-wake accounting attached to run metrics (wakes
#: that planned their legs as one batch, legs that rode in them, and
#: candidates whose commit audit forced a sequential replan).  Same
#: normalisation contract as :data:`FALLBACK_KEYS`: a missing dict —
#: results stored before batched wakes existed, or any run below the
#: paper-scale gate — reads all-zero.  The counters depend only on the
#: run's seeds and config, so they survive
#: :func:`~repro.sim.serialize.deterministic_view`.
BATCH_KEYS = ("batched_wakes", "batched_legs", "batch_conflicts",
              "rescued_legs")


@dataclass(frozen=True)
class CheckpointSample:
    """All metric values at one item-count checkpoint."""

    items_processed: int
    tick: Tick
    ppr: float
    rwr: float
    selection_seconds: float
    planning_seconds: float
    memory_bytes: int


@dataclass
class RunMetrics:
    """Final metrics of one simulation run plus the checkpoint series.

    ``fallback`` is the windowed-pipeline tier accounting
    (:data:`FALLBACK_KEYS`): how many legs fell back to the windowed
    search or to wait-in-place, and how many horizon replans the engine
    issued for the resulting partial legs.  All-zero on any run the full
    search handled end to end.

    ``fastpath`` is the tier-0 accounting (:data:`FASTPATH_KEYS`): how
    many legs the free-flow fast path served without searching, and why
    the others fell through to the full search.  Unlike ``fallback`` it
    is *expected* to be non-zero on healthy runs — a high hit rate is the
    fast path doing its job.

    ``batch`` is the paper-scale accounting (:data:`BATCH_KEYS`): the
    batched-wake counters plus ``rescued_legs``, the conflicted descents
    the wait-following rescue served instead of the full search.
    All-zero on every run below the paper-scale gate (batching and the
    rescue default off there); at paper scale a low ``batch_conflicts``
    / ``batched_legs`` ratio is the optimistic commit doing its job.
    """

    makespan: Tick = 0
    items_processed: int = 0
    missions_completed: int = 0
    ppr: float = 0.0
    rwr: float = 0.0
    selection_seconds: float = 0.0
    planning_seconds: float = 0.0
    peak_memory_bytes: int = 0
    checkpoints: List[CheckpointSample] = field(default_factory=list)
    fallback: Dict[str, int] = field(default_factory=dict)
    fastpath: Dict[str, int] = field(default_factory=dict)
    batch: Dict[str, int] = field(default_factory=dict)

    def fallback_view(self) -> Dict[str, int]:
        """``fallback`` with every key present (missing keys read 0)."""
        return {key: self.fallback.get(key, 0) for key in FALLBACK_KEYS}

    def fastpath_view(self) -> Dict[str, int]:
        """``fastpath`` with every key present (missing keys read 0)."""
        return {key: self.fastpath.get(key, 0) for key in FASTPATH_KEYS}

    def batch_view(self) -> Dict[str, int]:
        """``batch`` with every key present (missing keys read 0)."""
        return {key: self.batch.get(key, 0) for key in BATCH_KEYS}

    @property
    def total_planner_seconds(self) -> float:
        """STC + PTC — the paper's total execution time comparison."""
        return self.selection_seconds + self.planning_seconds


class MetricsRecorder:
    """Accumulates metrics during a run and snapshots checkpoints.

    Parameters
    ----------
    total_items:
        Size of the workload; defines the checkpoint grid.
    n_checkpoints:
        How many evenly spaced checkpoints to record (paper: 10).
    """

    def __init__(self, total_items: int, n_checkpoints: int = 10) -> None:
        if total_items < 1:
            raise ValueError("total_items must be >= 1")
        if n_checkpoints < 1:
            raise ValueError("n_checkpoints must be >= 1")
        self.total_items = total_items
        step = max(1, total_items // n_checkpoints)
        self._thresholds = [step * (i + 1) for i in range(n_checkpoints)]
        self._thresholds[-1] = min(self._thresholds[-1], total_items)
        self._next_checkpoint = 0
        self.samples: List[CheckpointSample] = []
        self.items_processed = 0
        self.peak_memory = 0

    def note_items_processed(self, count: int) -> None:
        """Record that ``count`` more items finished processing."""
        self.items_processed += count

    def note_memory(self, memory_bytes: int) -> None:
        """Fold one memory sample into the running peak.

        The event-driven engine samples memory only at ticks where a
        planner structure can have grown (every tick would be wasted
        work: between events reservations only shrink), so peak tracking
        is decoupled from checkpoint emission.
        """
        if memory_bytes > self.peak_memory:
            self.peak_memory = memory_bytes

    def would_checkpoint(self) -> bool:
        """Whether the item count has crossed the next pending threshold.

        Lets the engine skip computing the (comparatively expensive)
        rate inputs of :meth:`maybe_checkpoint` on the vast majority of
        ticks where no checkpoint can be emitted.
        """
        return (self._next_checkpoint < len(self._thresholds)
                and self.items_processed >= self._thresholds[self._next_checkpoint])

    def maybe_checkpoint(self, tick: Tick, ppr: float, rwr: float,
                         selection_seconds: float, planning_seconds: float,
                         memory_bytes: int) -> Optional[CheckpointSample]:
        """Snapshot a checkpoint if the item count crossed a threshold.

        Crossing several thresholds in one tick emits a single sample at
        the highest crossed threshold (the intermediate values would be
        identical anyway).
        """
        self.note_memory(memory_bytes)
        crossed = False
        while (self._next_checkpoint < len(self._thresholds)
               and self.items_processed >= self._thresholds[self._next_checkpoint]):
            self._next_checkpoint += 1
            crossed = True
        if not crossed:
            return None
        sample = CheckpointSample(
            items_processed=self.items_processed, tick=tick, ppr=ppr,
            rwr=rwr, selection_seconds=selection_seconds,
            planning_seconds=planning_seconds, memory_bytes=memory_bytes)
        self.samples.append(sample)
        return sample


def picker_processing_rate(busy_ticks_per_picker: List[int],
                           elapsed: Tick) -> float:
    """Eq. 6: mean over pickers of (processing ticks / elapsed time)."""
    if elapsed <= 0 or not busy_ticks_per_picker:
        return 0.0
    return sum(b / elapsed for b in busy_ticks_per_picker) / len(busy_ticks_per_picker)


def robot_working_rate(busy_ticks_per_robot: List[int],
                       elapsed: Tick) -> float:
    """Eq. 7: mean over robots of (working ticks / elapsed time)."""
    if elapsed <= 0 or not busy_ticks_per_robot:
        return 0.0
    return sum(b / elapsed for b in busy_ticks_per_robot) / len(busy_ticks_per_robot)
