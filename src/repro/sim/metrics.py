"""Effectiveness and efficiency metrics (paper Sec. VII-A).

Effectiveness: **Makespan** (Eq. 1), **PPR** (Eq. 6, picker processing
rate) and **RWR** (Eq. 7, robot working rate).  Efficiency: **STC**
(selection time), **PTC** (planning time) and **MC** (memory consumption).

The Fig. 10–12 experiments plot these at ten evenly spaced *item-count*
checkpoints during the run; :class:`MetricsRecorder` snapshots each metric
the moment the cumulative processed-item count crosses a checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..types import Tick

#: Keys of the fallback-tier accounting attached to run metrics; a
#: missing dict (results produced by the frozen legacy engine, or stored
#: before PR 4) normalises to all-zero, which is also what any run that
#: never needed a fallback reports.
FALLBACK_KEYS = ("windowed_legs", "wait_legs", "horizon_replans")

#: Keys of the tier-0 fast-path accounting attached to run metrics
#: (free-flow legs served without searching, candidates a reservation
#: audit rejected, legs with no auditable candidate).  Same normalisation
#: contract as :data:`FALLBACK_KEYS`: a missing dict — results stored
#: before the fast path existed — reads all-zero.  The counters are
#: deterministic (they depend only on the run's seeds, never on timing),
#: so they survive :func:`~repro.sim.serialize.deterministic_view` and
#: compare exactly across serial and worker-pool runs.
FASTPATH_KEYS = ("free_flow_legs", "audit_rejects", "misses")

#: Keys of the batched-wake accounting attached to run metrics (wakes
#: that planned their legs as one batch, legs that rode in them, and
#: candidates whose commit audit forced a sequential replan).  Same
#: normalisation contract as :data:`FALLBACK_KEYS`: a missing dict —
#: results stored before batched wakes existed, or any run below the
#: paper-scale gate — reads all-zero.  The counters depend only on the
#: run's seeds and config, so they survive
#: :func:`~repro.sim.serialize.deterministic_view`.
BATCH_KEYS = ("batched_wakes", "batched_legs", "batch_conflicts",
              "rescued_legs")


@dataclass(frozen=True)
class CheckpointSample:
    """All metric values at one item-count checkpoint."""

    items_processed: int
    tick: Tick
    ppr: float
    rwr: float
    selection_seconds: float
    planning_seconds: float
    memory_bytes: int


@dataclass
class RunMetrics:
    """Final metrics of one simulation run plus the checkpoint series.

    ``fallback`` is the windowed-pipeline tier accounting
    (:data:`FALLBACK_KEYS`): how many legs fell back to the windowed
    search or to wait-in-place, and how many horizon replans the engine
    issued for the resulting partial legs.  All-zero on any run the full
    search handled end to end.

    ``fastpath`` is the tier-0 accounting (:data:`FASTPATH_KEYS`): how
    many legs the free-flow fast path served without searching, and why
    the others fell through to the full search.  Unlike ``fallback`` it
    is *expected* to be non-zero on healthy runs — a high hit rate is the
    fast path doing its job.

    ``batch`` is the paper-scale accounting (:data:`BATCH_KEYS`): the
    batched-wake counters plus ``rescued_legs``, the conflicted descents
    the wait-following rescue served instead of the full search.
    All-zero on every run below the paper-scale gate (batching and the
    rescue default off there); at paper scale a low ``batch_conflicts``
    / ``batched_legs`` ratio is the optimistic commit doing its job.
    """

    makespan: Tick = 0
    items_processed: int = 0
    missions_completed: int = 0
    ppr: float = 0.0
    rwr: float = 0.0
    selection_seconds: float = 0.0
    planning_seconds: float = 0.0
    peak_memory_bytes: int = 0
    checkpoints: List[CheckpointSample] = field(default_factory=list)
    fallback: Dict[str, int] = field(default_factory=dict)
    fastpath: Dict[str, int] = field(default_factory=dict)
    batch: Dict[str, int] = field(default_factory=dict)

    def fallback_view(self) -> Dict[str, int]:
        """``fallback`` with every key present (missing keys read 0)."""
        return {key: self.fallback.get(key, 0) for key in FALLBACK_KEYS}

    def fastpath_view(self) -> Dict[str, int]:
        """``fastpath`` with every key present (missing keys read 0)."""
        return {key: self.fastpath.get(key, 0) for key in FASTPATH_KEYS}

    def batch_view(self) -> Dict[str, int]:
        """``batch`` with every key present (missing keys read 0)."""
        return {key: self.batch.get(key, 0) for key in BATCH_KEYS}

    @property
    def total_planner_seconds(self) -> float:
        """STC + PTC — the paper's total execution time comparison."""
        return self.selection_seconds + self.planning_seconds


def _checkpoint_grid(total_items: int, n_checkpoints: int) -> List[int]:
    """Evenly spaced item-count thresholds ending exactly at the total.

    ``ceil(total · i / n)`` for ``i = 1..n``, deduplicated.  Strictly
    increasing by construction and always finishing at ``total_items``,
    so the final checkpoint is reachable for every workload size — the
    old ``step = total // n`` grid was non-monotonic when
    ``total < n`` (its clamp pulled the last threshold *below* earlier
    ones, so it never fired) and stopped short of the run's end whenever
    ``total % n != 0``.  When ``total`` is a multiple of ``n`` the grid
    equals the old one, keeping historical checkpoint series identical.
    """
    grid: List[int] = []
    for i in range(1, n_checkpoints + 1):
        threshold = -(-total_items * i // n_checkpoints)
        if not grid or threshold > grid[-1]:
            grid.append(threshold)
    return grid


class MetricsRecorder:
    """Accumulates metrics during a run and snapshots checkpoints.

    Parameters
    ----------
    total_items:
        Size of the workload; defines the checkpoint grid.
    n_checkpoints:
        How many evenly spaced checkpoints to record (paper: 10).
    """

    def __init__(self, total_items: int, n_checkpoints: int = 10) -> None:
        if total_items < 1:
            raise ValueError("total_items must be >= 1")
        if n_checkpoints < 1:
            raise ValueError("n_checkpoints must be >= 1")
        self.total_items = total_items
        self.n_checkpoints = n_checkpoints
        self._thresholds = _checkpoint_grid(total_items, n_checkpoints)
        self._next_checkpoint = 0
        self.samples: List[CheckpointSample] = []
        self.items_processed = 0
        self.peak_memory = 0

    @property
    def thresholds(self) -> List[int]:
        """The item-count checkpoint grid (ascending, ends at the total)."""
        return list(self._thresholds)

    def extend_total(self, new_total: int) -> None:
        """Grow the grid for a workload extended mid-run (service mode).

        The remaining thresholds are recomputed over ``new_total`` so the
        final checkpoint still lands exactly on the last item; thresholds
        at or below the items already processed are skipped — their
        samples belong to the grid that was in force when they crossed.
        """
        if new_total < self.total_items:
            raise ValueError(
                f"cannot shrink total_items from {self.total_items} "
                f"to {new_total}")
        if new_total == self.total_items:
            return
        self.total_items = new_total
        self._thresholds = _checkpoint_grid(new_total, self.n_checkpoints)
        self._next_checkpoint = 0
        while (self._next_checkpoint < len(self._thresholds)
               and self._thresholds[self._next_checkpoint]
               <= self.items_processed):
            self._next_checkpoint += 1

    def note_items_processed(self, count: int) -> None:
        """Record that ``count`` more items finished processing."""
        self.items_processed += count

    def note_memory(self, memory_bytes: int) -> None:
        """Fold one memory sample into the running peak.

        Peak tracking is decoupled from checkpoint emission: the
        event-driven engine feeds one opening-footprint sample, the
        checkpoint-boundary values, and — at result assembly — the
        planner's own commit-time high-water mark
        (``Planner.peak_memory_bytes``), which is where the per-event
        memory sweep of earlier engine generations moved.
        """
        if memory_bytes > self.peak_memory:
            self.peak_memory = memory_bytes

    def would_checkpoint(self) -> bool:
        """Whether the item count has crossed the next pending threshold.

        Lets the engine skip computing the (comparatively expensive)
        rate inputs of :meth:`maybe_checkpoint` on the vast majority of
        ticks where no checkpoint can be emitted.
        """
        return (self._next_checkpoint < len(self._thresholds)
                and self.items_processed >= self._thresholds[self._next_checkpoint])

    def maybe_checkpoint(self, tick: Tick, ppr: float, rwr: float,
                         selection_seconds: float, planning_seconds: float,
                         memory_bytes: int) -> Optional[CheckpointSample]:
        """Snapshot a checkpoint if the item count crossed a threshold.

        Crossing several thresholds in one tick emits a single sample at
        the highest crossed threshold (the intermediate values would be
        identical anyway).
        """
        self.note_memory(memory_bytes)
        crossed = False
        while (self._next_checkpoint < len(self._thresholds)
               and self.items_processed >= self._thresholds[self._next_checkpoint]):
            self._next_checkpoint += 1
            crossed = True
        if not crossed:
            return None
        sample = CheckpointSample(
            items_processed=self.items_processed, tick=tick, ppr=ppr,
            rwr=rwr, selection_seconds=selection_seconds,
            planning_seconds=planning_seconds, memory_bytes=memory_bytes)
        self.samples.append(sample)
        return sample


def picker_processing_rate(busy_ticks_per_picker: List[int],
                           elapsed: Tick) -> float:
    """Eq. 6: mean over pickers of (processing ticks / elapsed time)."""
    if elapsed <= 0 or not busy_ticks_per_picker:
        return 0.0
    return sum(b / elapsed for b in busy_ticks_per_picker) / len(busy_ticks_per_picker)


def robot_working_rate(busy_ticks_per_robot: List[int],
                       elapsed: Tick) -> float:
    """Eq. 7: mean over robots of (working ticks / elapsed time)."""
    if elapsed <= 0 or not busy_ticks_per_robot:
        return 0.0
    return sum(b / elapsed for b in busy_ticks_per_robot) / len(busy_ticks_per_robot)


# -- steady-state windows (service mode) -------------------------------------


@dataclass(frozen=True)
class WindowSample:
    """Metrics over one tick window ``[window_start, window_end)``.

    The since-tick-0 rates of :class:`CheckpointSample` converge to the
    lifetime mean on an open-ended run and stop saying anything about the
    *current* regime after a few hours of stream; the window sample is
    the same PPR/RWR definitions with the window's own length as the
    denominator, plus the throughput rates a service operator actually
    watches (items and planned legs per tick) and the live structure
    footprint at the window boundary.
    """

    window_start: Tick
    window_end: Tick
    items_processed: int
    legs_planned: int
    ppr: float
    rwr: float
    items_per_tick: float
    legs_per_tick: float
    memory_bytes: int


class SteadyStateTracker:
    """Turns cumulative counters into rolling per-window rates.

    The engine (or the soak harness) feeds it the *cumulative* totals at
    each window boundary — picker/robot busy ticks, items processed, legs
    planned — and the tracker differences them against the previous
    boundary, so the instrumented loop never maintains per-window state
    itself.  Window boundaries need not be exactly ``window_ticks`` apart
    (the event engine lands on the first executed tick at or past each
    boundary); rates always use the *actual* span between samples.
    """

    def __init__(self, window_ticks: int) -> None:
        if window_ticks < 1:
            raise ValueError(
                f"window_ticks must be >= 1, got {window_ticks}")
        self.window_ticks = window_ticks
        self.samples: List[WindowSample] = []
        self._last_tick: Tick = 0
        self._last_picker_busy = 0
        self._last_robot_busy = 0
        self._last_items = 0
        self._last_legs = 0

    @property
    def next_boundary(self) -> Tick:
        """The first tick at or past which the next sample is due."""
        return self._last_tick + self.window_ticks

    def sample(self, tick: Tick, picker_busy_ticks: List[int],
               robot_busy_ticks: List[int], items_processed: int,
               legs_planned: int, memory_bytes: int) -> WindowSample:
        """Close the window ending at ``tick`` from cumulative totals."""
        span = tick - self._last_tick
        if span < 1:
            raise ValueError(
                f"window sample at tick {tick} does not advance past the "
                f"previous boundary {self._last_tick}")
        picker_busy = sum(picker_busy_ticks)
        robot_busy = sum(robot_busy_ticks)
        n_pickers = max(len(picker_busy_ticks), 1)
        n_robots = max(len(robot_busy_ticks), 1)
        window = WindowSample(
            window_start=self._last_tick,
            window_end=tick,
            items_processed=items_processed - self._last_items,
            legs_planned=legs_planned - self._last_legs,
            ppr=(picker_busy - self._last_picker_busy) / (span * n_pickers),
            rwr=(robot_busy - self._last_robot_busy) / (span * n_robots),
            items_per_tick=(items_processed - self._last_items) / span,
            legs_per_tick=(legs_planned - self._last_legs) / span,
            memory_bytes=memory_bytes)
        self.samples.append(window)
        self._last_tick = tick
        self._last_picker_busy = picker_busy
        self._last_robot_busy = robot_busy
        self._last_items = items_processed
        self._last_legs = legs_planned
        return window
