"""The validation system: an event-driven warehouse simulator (Sec. VII-A).

Drives one planner over one workload: injects item arrivals, wakes the
planner whenever a dispatch is possible, converts planning schemes into
missions, materialises robot motion per conflict-free leg, runs the FCFS
pickers, and records every metric the paper reports.

Tick ``t`` covers the interval ``[t, t + 1)`` and keeps the frozen
per-tick semantics (see :mod:`repro.sim._legacy_engine`):

1. items with ``arrival == t`` emerge on their racks;
2. the planner emits ``U_t`` (selection + pickup legs starting at ``t``);
3. robots move along their legs; completed legs trigger the next mission
   stage, whose path starts at ``t + 1``;
4. pickers process; completed batches trigger return legs;
5. busy counters, the bottleneck trace, and metric checkpoints update.

The difference is *which* ticks execute.  A heapq calendar holds every
tick at which the world can change — the next item arrival, each moving
leg's completion trigger, each picker's batch pop/completion, and a
planner wake whenever an idle robot and a selectable rack coexist — and
the engine jumps straight from one such tick to the next.  The skipped
span is accounted analytically: busy-tick counters become lazy intervals
flushed at stage transitions and checkpoints, the bottleneck trace grows
one run-length segment per span (:meth:`BottleneckTrace.record_run`),
pickers fast-forward via :func:`advance_picker_span`, and the planner
receives the whole span at once through its span-aware
:meth:`~repro.planners.base.Planner.advance` hook.  Behaviour is
bit-identical to the frozen per-tick engine (the golden traces and the
``mini``-family equivalence suite enforce it); only wall-clock changes.

Robot motion is materialised per-leg: a moving robot's ``location`` is
written at its leg-completion event (and refreshed for all moving robots
at planner-wake ticks), not every tick.  Consumers needing the
tick-by-tick trail expand a leg with
:meth:`~repro.pathfinding.paths.Path.cells_between`.

Since the windowed planning pipeline (PR 4) a leg may be *partial*: a
windowed search commits only ``W`` ticks of conflict-checked path, and a
boxed-in robot plans a wait-in-place.  The completion trigger of such a
leg is a **horizon-replan event**: instead of a stage transition, the
engine asks the planner (``continue_leg``) for the continuation from the
robot's current cell and re-enters the new leg's trigger into the
calendar — the mission stays in its stage throughout.  Runs in which
every search succeeds at the full tier (all golden and equivalence
workloads) never produce such events and are bit-identical to the frozen
per-tick engine.

The makespan is the tick at which the last rack lands back on its home
cell (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SimulationConfig
from ..errors import SimulationError
from ..pathfinding.paths import Path
from ..planners.base import Planner
from ..sim.metrics import (MetricsRecorder, RunMetrics, SteadyStateTracker,
                           WindowSample, picker_processing_rate,
                           robot_working_rate)
from ..sim.missions import Mission, MissionStage
from ..sim.queueing import (advance_picker_span, enqueue_rack,
                            process_picker_tick,
                            ticks_until_next_picker_event)
from ..sim.trace import BottleneckTrace
from ..types import Tick
from ..warehouse.entities import Item, RackPhase, RobotState
from ..warehouse.state import WarehouseState

#: ``MissionStage.moving`` as a set, so the per-wake world-sync loop pays
#: one containment test per active mission instead of a property call.
_MOVING_STAGES = frozenset((MissionStage.TO_RACK, MissionStage.TO_PICKER,
                            MissionStage.RETURNING))


@dataclass
class SimulationResult:
    """Everything a run produced: metrics, trace, and planner counters."""

    planner_name: str
    metrics: RunMetrics
    trace: Optional[BottleneckTrace]
    #: Completed missions, in completion order (for per-cycle analyses).
    missions: List[Mission] = field(default_factory=list)
    #: Every planned leg, when ``collect_paths`` was enabled.
    paths: List[Path] = field(default_factory=list)
    #: Robot id owning each entry of ``paths`` (parallel list).
    path_owners: List[int] = field(default_factory=list)


class Simulation:
    """One planner × one workload, run to completion on an event calendar.

    Parameters
    ----------
    state:
        The warehouse world (must be the same object the planner is bound
        to — re-planning every wake tick mutates it in place).
    planner:
        Any :class:`~repro.planners.base.Planner`.
    items:
        The full workload, each item stamped with its arrival tick.
    config:
        Simulation knobs; see :class:`~repro.config.SimulationConfig`.
    """

    def __init__(self, state: WarehouseState, planner: Planner,
                 items: Sequence[Item],
                 config: Optional[SimulationConfig] = None) -> None:
        if planner.state is not state:
            raise SimulationError(
                "planner must be constructed over the simulation's state")
        if not items:
            raise SimulationError("workload is empty")
        self.state = state
        self.planner = planner
        self.config = config if config is not None else SimulationConfig()
        self._items = sorted(items, key=lambda item: (item.arrival, item.item_id))
        self._next_item = 0
        self._active: Dict[int, Mission] = {}   # keyed by robot id
        self._batch_time_of: Dict[int, int] = {}  # rack id -> current batch time
        self._mission_of_rack: Dict[int, Mission] = {}
        self._completed: List[Mission] = []
        self._recorder = MetricsRecorder(len(self._items),
                                         self.config.metrics_checkpoints)
        self._trace = (BottleneckTrace()
                       if self.config.record_bottleneck_trace else None)
        self._paths: List[Path] = []
        self._path_owners: List[int] = []
        self._last_return: Tick = 0

        # -- event calendar + analytic span accounting ----------------------
        #: (trigger tick, mission dispatch seq, mission) — the seq keeps
        #: same-tick completions in legacy ``_active`` iteration order.
        self._motion_events: List[Tuple[Tick, int, Mission]] = []
        #: (trigger tick, picker id) — ties processed in picker-id order,
        #: matching the legacy per-tick picker sweep.
        self._picker_events: List[Tuple[Tick, int]] = []
        self._mission_seq = 0
        #: Dispatch sequence number of each robot's *current* mission —
        #: same-tick leg completions replay in dispatch order, exactly the
        #: frozen engine's ``_active`` insertion-order sweep.
        self._seq_of_robot: Dict[int, int] = {}
        #: Last tick each picker has processed (exact state as-of its end).
        self._picker_synced: List[Tick] = [-1] * len(state.pickers)
        #: Tick from which each busy robot's current busy interval runs.
        self._busy_since: Dict[int, Tick] = {}
        #: Items emerged but not yet batched (== state.total_pending_items()).
        self._n_pending = state.total_pending_items()
        #: Racks STORED with pending items (== len(state.selectable_racks())).
        self._n_selectable = len(state.selectable_racks())
        # Instantaneous mission-stage decomposition (the Fig. 13 counts).
        self._n_transporting = 0
        self._n_queuing = 0
        self._n_processing = 0
        self._events_processed = 0
        #: The next tick to execute (the event clock).  ``run`` used to
        #: keep this in a loop local; promoting it to instance state is
        #: what lets a run pause (``run_until``), checkpoint, and resume
        #: without the loop noticing.
        self._t: Tick = 0

    # -- the main loop -----------------------------------------------------

    def run(self) -> SimulationResult:
        """Run until the workload drains; return the collected metrics."""
        while self._advance_once():
            pass
        return self._result(self._t)

    def run_until(self, t_stop: Tick) -> Tick:
        """Execute events until the clock reaches ``t_stop`` (or drains).

        Runs exactly the :meth:`run` loop, stopping as soon as the next
        tick to execute is at or past ``t_stop`` — the executed prefix is
        bit-identical to the same span of an uninterrupted run, so a run
        driven through any sequence of ``run_until`` calls (the service
        loop) finishes with the exact result one ``run()`` call produces.
        Returns the clock, which may overshoot ``t_stop`` (the calendar
        jumps quiet spans) or stop short of it (the workload drained; see
        :meth:`extend_items` to feed more).
        """
        while self._t < t_stop and self._advance_once():
            pass
        return self._t

    def _advance_once(self) -> bool:
        """Execute the tick at the clock; ``False`` once drained."""
        t = self._t
        self._inject_arrivals(t)
        if self._finished():
            return False
        if t >= self.config.max_ticks:
            raise SimulationError(
                f"simulation exceeded max_ticks={self.config.max_ticks} "
                f"({self.state.total_pending_items()} items pending, "
                f"{len(self._active)} missions active)")
        if self._can_dispatch():
            self._sync_world(t)
            self._dispatch(t)
        self._run_motion_events(t)
        self._run_picker_events(t)
        self._account(t)
        next_t = self._next_active_tick(t)
        self.planner.advance(t, next_t - 1)
        if self._trace is not None and next_t > t + 1:
            self._trace.record_run(t + 1, next_t - 1,
                                   self._n_transporting, self._n_queuing,
                                   self._n_processing)
        self._events_processed += 1
        self._t = next_t
        return True

    # -- service mode (open-ended streams) ---------------------------------

    @property
    def tick(self) -> Tick:
        """The next tick the event loop will execute."""
        return self._t

    @property
    def items_total(self) -> int:
        """Items fed so far (grows under :meth:`extend_items`)."""
        return len(self._items)

    @property
    def items_processed(self) -> int:
        """Items whose picker batch has completed."""
        return self._recorder.items_processed

    @property
    def drained(self) -> bool:
        """Whether every fed item is processed and no mission is live."""
        return self._finished()

    def extend_items(self, items: Sequence[Item]) -> None:
        """Append future arrivals to the workload (service mode).

        The appended items must sort strictly after the current tail in
        ``(arrival, item_id)`` order and must not arrive before the
        clock: both are exactly the conditions under which feeding the
        stream in chunks is indistinguishable from having supplied every
        item up front, which is the service loop's determinism contract
        (checkpoint → restore → continue replays the same run).
        """
        if not items:
            return
        fresh = sorted(items, key=lambda item: (item.arrival, item.item_id))
        previous = self._items[-1]
        for item in fresh:
            if (item.arrival, item.item_id) <= (previous.arrival,
                                                previous.item_id):
                raise SimulationError(
                    f"extended item {item.item_id} (arrival "
                    f"{item.arrival}) does not sort after the current "
                    f"tail item {previous.item_id} (arrival "
                    f"{previous.arrival})")
            if item.arrival < self._t:
                raise SimulationError(
                    f"extended item {item.item_id} arrives at "
                    f"{item.arrival}, before the clock ({self._t}) — "
                    f"past arrivals would diverge from an up-front feed")
            previous = item
        self._items.extend(fresh)
        self._recorder.extend_total(len(self._items))

    def sample_window(self, tracker: SteadyStateTracker) -> WindowSample:
        """Close a steady-state window at the clock (service telemetry).

        Flushes the lazy busy intervals through the last decided tick so
        the cumulative busy totals are exact, then hands the totals to
        ``tracker`` (a :class:`~repro.sim.metrics.SteadyStateTracker`).
        Flushing only realises accounting the run would perform anyway,
        so sampling never perturbs the deterministic view.
        """
        if self._t > 0:
            self._flush_busy_counters(self._t - 1)
        return tracker.sample(
            tick=self._t,
            picker_busy_ticks=[p.busy_ticks for p in self.state.pickers],
            robot_busy_ticks=[r.busy_ticks for r in self.state.robots],
            items_processed=self._recorder.items_processed,
            legs_planned=self.planner.stats.legs_planned,
            memory_bytes=self.planner.memory_bytes())

    def result(self) -> SimulationResult:
        """The final metrics of a drained run (service-mode epilogue)."""
        if not self._finished():
            raise SimulationError(
                "result requested before the workload drained "
                f"({self.state.total_pending_items()} items pending, "
                f"{len(self._active)} missions active)")
        return self._result(self._t)

    def _finished(self) -> bool:
        return (self._next_item >= len(self._items)
                and self._n_pending == 0
                and not self._active)

    def _can_dispatch(self) -> bool:
        """Whether an idle robot and a selectable rack coexist right now.

        The planner-wake condition: exactly the ticks at which the frozen
        per-tick engine's ``plan`` call did *not* take its side-effect-free
        early return.
        """
        return (self._n_selectable > 0
                and len(self._active) < len(self.state.robots))

    @property
    def events_processed(self) -> int:
        """Active ticks executed so far (the bench_engine events/s base)."""
        return self._events_processed

    def _next_active_tick(self, t: Tick) -> Tick:
        """The earliest tick after ``t`` at which anything can change."""
        if self._finished():
            return t + 1
        nxt = self.config.max_ticks
        if self._next_item < len(self._items):
            nxt = min(nxt, self._items[self._next_item].arrival)
        if self._motion_events:
            nxt = min(nxt, self._motion_events[0][0])
        if self._picker_events:
            nxt = min(nxt, self._picker_events[0][0])
        if self._can_dispatch():
            nxt = t + 1
        if nxt <= t:
            raise SimulationError(
                f"event calendar stalled at tick {t} (next event {nxt})")
        return nxt

    # -- stage 1: arrivals ----------------------------------------------------

    def _inject_arrivals(self, t: Tick) -> None:
        items, racks = self._items, self.state.racks
        while (self._next_item < len(items)
               and items[self._next_item].arrival <= t):
            item = items[self._next_item]
            rack = racks[item.rack_id]
            if rack.phase is RackPhase.STORED and not rack.pending_items:
                self._n_selectable += 1
            self.state.deliver_item(item)
            self._n_pending += 1
            self._next_item += 1

    # -- stage 2: planning ------------------------------------------------------

    def _sync_world(self, t: Tick) -> None:
        """Bring the planner-visible world exactly to the top of tick ``t``.

        Pickers fast-forward to the end of tick ``t - 1`` (their
        ``finish_time_estimate`` and accumulated-processing counters feed
        every selector), and moving robots materialise their current leg
        position — the state the frozen engine maintained tick by tick.
        """
        synced = self._picker_synced
        racks = self.state.racks
        for picker in self.state.pickers:
            pid = picker.picker_id
            if picker.current_rack is not None and synced[pid] < t - 1:
                advance_picker_span(picker, racks, (t - 1) - synced[pid])
                synced[pid] = t - 1
        robots = self.state.robots
        moving_stages = _MOVING_STAGES
        for mission in self._active.values():
            if mission.stage in moving_stages:
                # Inlined Path.cell_at (clamped step lookup): this loop
                # touches every moving mission on every planner wake, and
                # the call + endpoint-property overhead is measurable at
                # fleet scale.
                path = mission.path
                steps = path.steps
                i = t - path.start_time
                if i <= 0:
                    __, x, y = steps[0]
                elif i >= len(steps) - 1:
                    __, x, y = steps[-1]
                else:
                    __, x, y = steps[i]
                robots[mission.robot_id].location = (x, y)

    def _dispatch(self, t: Tick) -> None:
        scheme = self.planner.plan(t)
        for assignment in scheme:
            robot = self.state.robots[assignment.robot_id]
            rack = self.state.racks[assignment.rack_id]
            if not robot.is_idle:
                raise SimulationError(
                    f"planner dispatched busy robot {robot.robot_id}")
            if rack.phase is not RackPhase.STORED or not rack.has_pending:
                raise SimulationError(
                    f"planner selected unavailable rack {rack.rack_id}")
            batch = rack.take_batch()
            self._record_path(robot.robot_id, assignment.pickup_path)
            mission = Mission(robot_id=robot.robot_id, rack_id=rack.rack_id,
                              batch=batch, path=assignment.pickup_path,
                              dispatched_at=t, stage_entered_at=t)
            rack.phase = RackPhase.IN_TRANSIT
            robot.state = RobotState.TO_RACK
            robot.rack_id = rack.rack_id
            self._active[robot.robot_id] = mission
            self._mission_of_rack[rack.rack_id] = mission
            self._batch_time_of[rack.rack_id] = mission.batch_processing_time
            self._n_pending -= len(batch)
            self._n_selectable -= 1
            self._n_transporting += 1
            self._busy_since[robot.robot_id] = t
            self._mission_seq += 1
            self._seq_of_robot[robot.robot_id] = self._mission_seq
            # A robot already parked beneath the rack completes its pickup
            # leg instantly.
            if assignment.pickup_path.end_time <= t:
                self._complete_leg(mission, t, t)
            else:
                self._schedule_leg(mission)

    def _record_path(self, robot_id: int, path: Path) -> None:
        """Keep one planned leg in the result, when collection is on."""
        if self.config.collect_paths:
            self._paths.append(path)
            self._path_owners.append(robot_id)

    # -- stage 3: motion -----------------------------------------------------------

    def _run_motion_events(self, t: Tick) -> None:
        events = self._motion_events
        while events and events[0][0] <= t:
            trigger, seq, mission = heappop(events)
            if trigger < t or not mission.stage.moving:
                raise SimulationError(
                    f"stale motion event (tick {trigger}, mission of rack "
                    f"{mission.rack_id} in stage {mission.stage.value}) "
                    f"popped at tick {t}")
            path = mission.path
            if path is None:
                raise SimulationError(
                    f"moving mission (rack {mission.rack_id}) has no path")
            self.state.robots[mission.robot_id].location = path.cell_at(t + 1)
            self._complete_leg(mission, t + 1, t)

    def _schedule_leg(self, mission: Mission) -> None:
        """Register the completion trigger of the mission's current leg."""
        heappush(self._motion_events,
                 (mission.path.end_time - 1,
                  self._seq_of_robot[mission.robot_id], mission))

    def _stage_target(self, mission: Mission) -> Tuple[int, int]:
        """Where the current moving stage is headed."""
        rack = self.state.racks[mission.rack_id]
        if mission.stage is MissionStage.TO_PICKER:
            return self.state.pickers[rack.picker_id].location
        return rack.home  # TO_RACK and RETURNING both end at the home cell

    def _complete_leg(self, mission: Mission, now: Tick, tick: Tick) -> None:
        robot = self.state.robots[mission.robot_id]
        rack = self.state.racks[mission.rack_id]
        picker = self.state.pickers[rack.picker_id]

        if mission.stage.moving and mission.path is not None:
            target = self._stage_target(mission)
            if mission.path.goal != target:
                # Horizon-replan event: the finished leg was partial — a
                # windowed prefix whose commit ran out, or a wait-out of a
                # boxed-in cell (see repro.pathfinding.pipeline).  The
                # mission stays in its stage; the planner supplies the
                # continuation from where the robot stands and the new
                # leg's completion trigger re-enters the calendar.
                continuation = self.planner.continue_leg(
                    now, mission.path.goal, target)
                self._record_path(mission.robot_id, continuation)
                mission.resume(now, continuation)
                self._schedule_leg(mission)
                return

        if mission.stage is MissionStage.TO_RACK:
            path = self.planner.plan_leg(now, rack.home, picker.location)
            self._record_path(mission.robot_id, path)
            mission.enter(MissionStage.TO_PICKER, now, path)
            robot.state = RobotState.TO_PICKER
            if path.end_time <= now:  # degenerate: rack home == picker cell
                self._complete_leg(mission, now, tick)
            else:
                self._schedule_leg(mission)
        elif mission.stage is MissionStage.TO_PICKER:
            mission.enter(MissionStage.QUEUING, now)
            robot.state = RobotState.QUEUING
            self._n_transporting -= 1
            self._n_queuing += 1
            enqueue_rack(picker, rack.rack_id,
                         self._batch_time_of[rack.rack_id])
            # The picker must still take its turn *this* tick (a free
            # station pops the rack in the same tick it is delivered).
            heappush(self._picker_events, (tick, picker.picker_id))
        elif mission.stage is MissionStage.RETURNING:
            mission.enter(MissionStage.DONE, now)
            robot.state = RobotState.IDLE
            robot.rack_id = None
            robot.location = rack.home
            rack.phase = RackPhase.STORED
            rack.last_return = now
            self._last_return = max(self._last_return, now)
            self._n_transporting -= 1
            if rack.has_pending:
                self._n_selectable += 1
            robot.busy_ticks += (now - 1) - self._busy_since.pop(robot.robot_id)
            del self._seq_of_robot[mission.robot_id]
            del self._active[mission.robot_id]
            del self._mission_of_rack[mission.rack_id]
            del self._batch_time_of[mission.rack_id]
            self._completed.append(mission)
        else:
            raise SimulationError(
                f"leg completion in non-moving stage {mission.stage.value}")

    # -- stage 4: pickers --------------------------------------------------------------

    def _run_picker_events(self, t: Tick) -> None:
        events = self._picker_events
        synced = self._picker_synced
        racks = self.state.racks
        while events and events[0][0] <= t:
            trigger, picker_id = heappop(events)
            if trigger < t:
                raise SimulationError(
                    f"stale picker event (picker {picker_id}, tick "
                    f"{trigger}) popped at tick {t}")
            if synced[picker_id] >= t:
                continue  # duplicate trigger for a tick already processed
            picker = self.state.pickers[picker_id]
            if picker.current_rack is not None:
                advance_picker_span(picker, racks, (t - 1) - synced[picker_id])
            synced[picker_id] = t
            started: List[int] = []
            completion = process_picker_tick(picker, t, self._batch_time_of,
                                             racks, started)
            for rack_id in started:
                mission = self._mission_of_rack[rack_id]
                mission.enter(MissionStage.PROCESSING, t)
                self.state.robots[mission.robot_id].state = RobotState.PROCESSING
                self._n_queuing -= 1
                self._n_processing += 1
            if completion is not None:
                mission = self._mission_of_rack[completion.rack_id]
                self._recorder.note_items_processed(mission.n_items)
                rack = racks[completion.rack_id]
                path = self.planner.plan_leg(completion.completed_at,
                                             picker.location, rack.home)
                self._record_path(mission.robot_id, path)
                mission.enter(MissionStage.RETURNING,
                              completion.completed_at, path)
                self.state.robots[mission.robot_id].state = RobotState.RETURNING
                self._n_processing -= 1
                self._n_transporting += 1
                if path.end_time <= completion.completed_at:
                    self._complete_leg(mission, completion.completed_at, t)
                else:
                    self._schedule_leg(mission)
            delay = ticks_until_next_picker_event(picker)
            if delay is not None:
                heappush(events, (t + delay, picker_id))

    # -- stage 5: accounting ------------------------------------------------------------

    #: Whether :meth:`_account` has sampled the opening footprint (class
    #: default so checkpoints pickled before the attribute existed
    #: restore cleanly — they re-sample a live value, which is a no-op
    #: for the peak).
    _accounted = False

    def _account(self, t: Tick) -> None:
        # Memory is no longer sampled at every event: the planner tracks
        # its own high-water mark at each leg commit and wake (the only
        # operations that grow the structures), and `_result` folds that
        # peak into the recorder.  The per-event sample here reduces to
        # one opening-footprint reading — the only value a commit-driven
        # peak cannot see on a run that never commits a leg — plus the
        # checkpoint-boundary sample the Fig. 12 series is built from,
        # which reads the exact end-of-event value the per-event sampling
        # recorded (memory only changes at commits and purges, and both
        # precede this hook within the event).
        if not self._accounted:
            self._recorder.note_memory(self.planner.memory_bytes())
            self._accounted = True
        if self._recorder.would_checkpoint():
            self._flush_busy_counters(t)
            elapsed = t + 1
            self._recorder.maybe_checkpoint(
                tick=t,
                ppr=picker_processing_rate(
                    [p.busy_ticks for p in self.state.pickers], elapsed),
                rwr=robot_working_rate(
                    [r.busy_ticks for r in self.state.robots], elapsed),
                selection_seconds=self.planner.stats.selection_seconds,
                planning_seconds=self.planner.stats.planning_seconds,
                memory_bytes=self.planner.memory_bytes())
        if self._trace is not None:
            self._trace.record(t, self._n_transporting, self._n_queuing,
                               self._n_processing)

    def _flush_busy_counters(self, t: Tick) -> None:
        """Realise every lazy busy interval through the end of tick ``t``."""
        robots = self.state.robots
        for robot_id, since in self._busy_since.items():
            robots[robot_id].busy_ticks += (t + 1) - since
            self._busy_since[robot_id] = t + 1
        synced = self._picker_synced
        racks = self.state.racks
        for picker in self.state.pickers:
            pid = picker.picker_id
            if picker.current_rack is not None and synced[pid] < t:
                advance_picker_span(picker, racks, t - synced[pid])
                synced[pid] = t

    # -- result assembly -----------------------------------------------------------------

    def _result(self, final_tick: Tick) -> SimulationResult:
        makespan = self._last_return
        if makespan != final_tick:
            raise SimulationError(
                f"drained run ended at tick {final_tick} but the last rack "
                f"returned at {makespan} — elapsed-time accounting bug")
        # Fold the planner's commit-time high-water mark into the
        # recorder's peak: with per-event sampling gone, the recorder has
        # only seen the opening footprint and the checkpoint boundaries.
        # Planners without the hook (replays) contribute 0 — a no-op.
        self._recorder.note_memory(
            getattr(self.planner, "peak_memory_bytes", 0))
        # The same denominator rule the checkpoints use (elapsed ticks at
        # sample time, here the full run), so the final PPR/RWR and a
        # checkpoint landing on the final accounted tick agree exactly.
        elapsed = max(final_tick, 1)
        metrics = RunMetrics(
            makespan=makespan,
            items_processed=self._recorder.items_processed,
            missions_completed=len(self._completed),
            ppr=picker_processing_rate(
                [p.busy_ticks for p in self.state.pickers], elapsed),
            rwr=robot_working_rate(
                [r.busy_ticks for r in self.state.robots], elapsed),
            selection_seconds=self.planner.stats.selection_seconds,
            planning_seconds=self.planner.stats.planning_seconds,
            peak_memory_bytes=self._recorder.peak_memory,
            checkpoints=list(self._recorder.samples),
            fallback={
                "windowed_legs": self.planner.stats.legs_windowed,
                "wait_legs": self.planner.stats.legs_wait,
                "horizon_replans": self.planner.stats.horizon_replans,
            },
            fastpath={
                "free_flow_legs": self.planner.stats.legs_free_flow,
                "audit_rejects": self.planner.stats.fastpath_audit_rejects,
                "misses": self.planner.stats.fastpath_misses,
            },
            batch={
                "batched_wakes": self.planner.stats.batched_wakes,
                "batched_legs": self.planner.stats.batched_legs,
                "batch_conflicts": self.planner.stats.batch_conflicts,
                "rescued_legs": self.planner.stats.rescued_legs,
            },
        )
        if metrics.items_processed != len(self._items):
            raise SimulationError(
                f"drained simulation processed {metrics.items_processed} of "
                f"{len(self._items)} items — accounting bug")
        return SimulationResult(planner_name=self.planner.name,
                                metrics=metrics, trace=self._trace,
                                missions=self._completed, paths=self._paths,
                                path_owners=self._path_owners)
