"""FCFS picker queue processing (paper Def. 2 and Eq. 3).

Pickers process queued racks first-come-first-serve — robots carrying racks
cannot cut the line in the confined picking area.  One call to
:func:`process_picker_tick` advances a single picker by one tick: pop the
next rack if the station is free, then perform one tick of processing,
reporting any batch that completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..types import Tick
from ..warehouse.entities import Picker, Rack


@dataclass
class ProcessingCompletion:
    """A batch that finished processing during this tick."""

    picker_id: int
    rack_id: int
    completed_at: Tick  # the tick *after* the final processing tick


def enqueue_rack(picker: Picker, rack_id: int, batch_time: int) -> None:
    """Append a delivered rack to the picker's FCFS queue (q_p)."""
    if batch_time <= 0:
        raise SimulationError(
            f"rack {rack_id} enqueued at picker {picker.picker_id} with "
            f"non-positive batch time {batch_time}")
    picker.queue.append(rack_id)
    picker.queued_processing += batch_time


def process_picker_tick(picker: Picker, t: Tick,
                        batch_time_of: Dict[int, int],
                        racks: List[Rack],
                        started: Optional[List[int]] = None
                        ) -> Optional[ProcessingCompletion]:
    """Advance one picker by one tick of processing.

    Parameters
    ----------
    picker:
        The station to advance.
    t:
        The current tick (work happens during ``[t, t + 1)``).
    batch_time_of:
        Batch processing time per queued rack id (owned by the engine's
        mission table).
    racks:
        The rack list, for the ``ar_r`` accumulated-processing counters.
    started:
        Optional output list; rack ids whose processing *starts* this tick
        are appended (the engine flips their mission stage).

    Returns
    -------
    ProcessingCompletion or None
        The batch that completed during this tick, if any.
    """
    if picker.current_rack is None and picker.queue:
        rack_id = picker.queue.popleft()
        batch_time = batch_time_of.get(rack_id)
        if batch_time is None:
            raise SimulationError(
                f"picker {picker.picker_id} popped rack {rack_id} with no "
                f"recorded batch time")
        picker.current_rack = rack_id
        picker.remaining_current = batch_time
        picker.queued_processing -= batch_time
        if picker.queued_processing < 0:
            raise SimulationError(
                f"picker {picker.picker_id} queued_processing went negative")
        if started is not None:
            started.append(rack_id)

    if picker.current_rack is None:
        return None

    picker.remaining_current -= 1
    picker.busy_ticks += 1
    picker.accumulated_processing += 1
    racks[picker.current_rack].accumulated_processing += 1

    if picker.remaining_current > 0:
        return None
    completed = ProcessingCompletion(picker_id=picker.picker_id,
                                     rack_id=picker.current_rack,
                                     completed_at=t + 1)
    picker.current_rack = None
    picker.remaining_current = 0
    return completed


def ticks_until_next_picker_event(picker: Picker) -> Optional[int]:
    """How many ticks until this picker's state can next change.

    The event-driven engine's calendar query: a picker mid-batch next
    changes when the batch completes (``remaining_current`` ticks away); a
    free picker with a queued rack pops it on the very next tick; a free
    picker with an empty queue is inert until an enqueue re-arms it
    (``None``).  Between those ticks the picker's evolution is linear —
    one tick of processing per tick — which is exactly what
    :func:`advance_picker_span` accounts analytically.
    """
    if picker.current_rack is not None:
        return picker.remaining_current
    if picker.queue:
        return 1
    return None


def advance_picker_span(picker: Picker, racks: List[Rack], n: int) -> None:
    """Fast-forward ``n`` quiet ticks of processing in O(1).

    Equivalent to ``n`` calls of :func:`process_picker_tick` under the
    guarantee (enforced here) that none of them would pop or complete a
    batch: the current batch must outlast the span, or the picker must be
    idle with an empty queue (in which case nothing accrues).
    """
    if n < 0:
        raise SimulationError(f"cannot advance a picker by {n} ticks")
    if n == 0:
        return
    if picker.current_rack is None:
        if picker.queue:
            raise SimulationError(
                f"picker {picker.picker_id} fast-forwarded {n} ticks past "
                f"a pending pop (queue length {len(picker.queue)})")
        return
    if picker.remaining_current <= n:
        raise SimulationError(
            f"picker {picker.picker_id} fast-forwarded {n} ticks past the "
            f"completion of rack {picker.current_rack} "
            f"(remaining {picker.remaining_current})")
    picker.remaining_current -= n
    picker.busy_ticks += n
    picker.accumulated_processing += n
    racks[picker.current_rack].accumulated_processing += n
