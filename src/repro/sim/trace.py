"""Bottleneck decomposition trace — the Fig. 13 case study instrument.

Fig. 13 plots, over picking time, the cost each fulfilment step is
accumulating across all racks: *transport* (pickup + delivery + return),
*queuing*, and *processing*.  The trace samples, every tick, how many
missions sit in each step and accumulates those counts — one
mission-tick of a step is one unit of that step's cost.  The dominant
accumulating component at any moment is the current bottleneck, and the
case study checks it migrates transport → queuing as a surge builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..types import Tick


@dataclass(frozen=True)
class BottleneckSample:
    """Instantaneous and cumulative step costs at one tick."""

    tick: Tick
    transporting: int
    queuing: int
    processing: int
    cum_transport: int
    cum_queuing: int
    cum_processing: int

    @property
    def bottleneck(self) -> str:
        """The step with the largest *instantaneous* cost at this tick."""
        costs = {"transport": self.transporting, "queuing": self.queuing,
                 "processing": self.processing}
        return max(costs, key=lambda k: (costs[k], k))


@dataclass
class BottleneckTrace:
    """Per-tick record of the fulfilment-step cost decomposition."""

    samples: List[BottleneckSample] = field(default_factory=list)
    _cum_transport: int = 0
    _cum_queuing: int = 0
    _cum_processing: int = 0

    def record(self, tick: Tick, transporting: int, queuing: int,
               processing: int) -> None:
        """Append one tick's decomposition (counts of missions per step)."""
        self._cum_transport += transporting
        self._cum_queuing += queuing
        self._cum_processing += processing
        self.samples.append(BottleneckSample(
            tick=tick, transporting=transporting, queuing=queuing,
            processing=processing, cum_transport=self._cum_transport,
            cum_queuing=self._cum_queuing,
            cum_processing=self._cum_processing))

    def bottleneck_timeline(self, window: int = 100) -> List[str]:
        """Dominant step per ``window``-tick bucket (smooths tick noise)."""
        timeline: List[str] = []
        for start in range(0, len(self.samples), window):
            bucket = self.samples[start:start + window]
            totals = {"transport": 0, "queuing": 0, "processing": 0}
            for sample in bucket:
                totals["transport"] += sample.transporting
                totals["queuing"] += sample.queuing
                totals["processing"] += sample.processing
            timeline.append(max(totals, key=lambda k: (totals[k], k)))
        return timeline

    def __len__(self) -> int:
        return len(self.samples)
