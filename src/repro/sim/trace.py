"""Bottleneck decomposition trace — the Fig. 13 case study instrument.

Fig. 13 plots, over picking time, the cost each fulfilment step is
accumulating across all racks: *transport* (pickup + delivery + return),
*queuing*, and *processing*.  The trace samples, every tick, how many
missions sit in each step and accumulates those counts — one
mission-tick of a step is one unit of that step's cost.  The dominant
accumulating component at any moment is the current bottleneck, and the
case study checks it migrates transport → queuing as a surge builds.

Storage is run-length encoded: the event-driven simulator fast-forwards
spans during which no mission changes stage, so the decomposition is
constant across each span and one :meth:`BottleneckTrace.record_run`
call records the whole span in O(1).  Consumers still see the exact
per-tick sample sequence through :attr:`BottleneckTrace.samples`, which
expands the runs (lazily, cached) into the same
:class:`BottleneckSample` list the per-tick recorder produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import SimulationError
from ..types import Tick


@dataclass(frozen=True)
class BottleneckSample:
    """Instantaneous and cumulative step costs at one tick."""

    tick: Tick
    transporting: int
    queuing: int
    processing: int
    cum_transport: int
    cum_queuing: int
    cum_processing: int

    @property
    def bottleneck(self) -> str:
        """The step with the largest *instantaneous* cost at this tick."""
        costs = {"transport": self.transporting, "queuing": self.queuing,
                 "processing": self.processing}
        return max(costs, key=lambda k: (costs[k], k))


class BottleneckTrace:
    """Run-length record of the fulfilment-step cost decomposition.

    ``record`` appends one tick; ``record_run`` appends a whole span of
    ticks sharing one decomposition.  Adjacent runs with identical counts
    merge, so a simulation dominated by long quiet spans stores a handful
    of runs instead of one object per tick.
    """

    def __init__(self) -> None:
        #: (start_tick, n_ticks, transporting, queuing, processing)
        self._runs: List[Tuple[Tick, int, int, int, int]] = []
        self._n_ticks = 0
        self._samples: List[BottleneckSample] = []
        #: How many runs ``_samples`` has already expanded.
        self._expanded_runs = 0

    def record(self, tick: Tick, transporting: int, queuing: int,
               processing: int) -> None:
        """Append one tick's decomposition (counts of missions per step)."""
        self.record_run(tick, tick, transporting, queuing, processing)

    def record_run(self, t_from: Tick, t_to: Tick, transporting: int,
                   queuing: int, processing: int) -> None:
        """Append the span ``[t_from, t_to]`` (inclusive) in O(1).

        The span must start right after the last recorded tick; the trace
        is a gapless per-tick series no matter how it was recorded.
        """
        if t_to < t_from:
            raise SimulationError(
                f"trace run [{t_from}, {t_to}] is empty")
        n = t_to - t_from + 1
        if self._runs:
            start, length, tr, qu, pr = self._runs[-1]
            if t_from != start + length:
                raise SimulationError(
                    f"trace run starts at {t_from}, expected "
                    f"{start + length} (gapless per-tick series)")
            if (tr, qu, pr) == (transporting, queuing, processing):
                if self._expanded_runs == len(self._runs):
                    # The cached expansion covered this run; re-expand it.
                    self._expanded_runs -= 1
                    del self._samples[start:]
                self._runs[-1] = (start, length + n, tr, qu, pr)
                self._n_ticks += n
                return
        elif t_from != 0:
            raise SimulationError(
                f"trace must start at tick 0, got {t_from}")
        self._runs.append((t_from, n, transporting, queuing, processing))
        self._n_ticks += n

    @property
    def samples(self) -> List[BottleneckSample]:
        """The exact per-tick sample sequence (runs expanded, cached)."""
        if self._expanded_runs < len(self._runs):
            self._expand()
        return self._samples

    def _expand(self) -> None:
        out = self._samples
        if out:
            last = out[-1]
            cum_tr, cum_qu, cum_pr = (last.cum_transport, last.cum_queuing,
                                      last.cum_processing)
        else:
            cum_tr = cum_qu = cum_pr = 0
        for start, length, tr, qu, pr in self._runs[self._expanded_runs:]:
            for i in range(length):
                cum_tr += tr
                cum_qu += qu
                cum_pr += pr
                out.append(BottleneckSample(
                    tick=start + i, transporting=tr, queuing=qu,
                    processing=pr, cum_transport=cum_tr,
                    cum_queuing=cum_qu, cum_processing=cum_pr))
        self._expanded_runs = len(self._runs)

    @property
    def runs(self) -> List[Tuple[Tick, int, int, int, int]]:
        """The raw run-length segments (start, n_ticks, tr, qu, pr)."""
        return list(self._runs)

    def bottleneck_timeline(self, window: int = 100) -> List[str]:
        """Dominant step per ``window``-tick bucket (smooths tick noise)."""
        timeline: List[str] = []
        samples = self.samples
        for start in range(0, len(samples), window):
            bucket = samples[start:start + window]
            totals = {"transport": 0, "queuing": 0, "processing": 0}
            for sample in bucket:
                totals["transport"] += sample.transporting
                totals["queuing"] += sample.queuing
                totals["processing"] += sample.processing
            timeline.append(max(totals, key=lambda k: (totals[k], k)))
        return timeline

    def __len__(self) -> int:
        return self._n_ticks
