"""Missions: one fulfilment cycle through the five-stage pipeline.

A mission binds a robot, a rack, and the item batch taken at selection
time, and walks the stages of Fig. 2:

    TO_RACK → TO_PICKER → QUEUING → PROCESSING → RETURNING → done

Movement stages carry the conflict-free path of the current leg; the two
stationary stages park the robot at the picker (off-grid, matching how the
paper folds queuing/processing into the delay terms of Eq. 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError
from ..pathfinding.paths import Path
from ..types import Tick
from ..warehouse.entities import Item


class MissionStage(enum.Enum):
    """Where the mission is in the fulfilment cycle."""

    TO_RACK = "to_rack"
    TO_PICKER = "to_picker"
    QUEUING = "queuing"
    PROCESSING = "processing"
    RETURNING = "returning"
    DONE = "done"

    @property
    def moving(self) -> bool:
        """Whether the robot is travelling during this stage."""
        return self in (MissionStage.TO_RACK, MissionStage.TO_PICKER,
                        MissionStage.RETURNING)


@dataclass
class Mission:
    """One dispatched fulfilment cycle.

    Attributes
    ----------
    robot_id, rack_id:
        The bound robot and rack.
    batch:
        Items taken from the rack at selection time; their total
        processing time is the rack's occupancy of the picker.
    path:
        The current leg's conflict-free path (None while stationary).
    stage:
        Current pipeline stage.
    dispatched_at:
        t_k of Eq. 2 — when the planner selected the rack.
    stage_entered_at:
        Tick of the latest stage transition (drives the Fig. 13 trace).
    """

    robot_id: int
    rack_id: int
    batch: List[Item]
    path: Optional[Path]
    stage: MissionStage = MissionStage.TO_RACK
    dispatched_at: Tick = 0
    stage_entered_at: Tick = 0

    def __post_init__(self) -> None:
        if not self.batch:
            raise SimulationError(
                f"mission for rack {self.rack_id} dispatched with an "
                f"empty batch")

    @property
    def batch_processing_time(self) -> int:
        """Σ_{i∈batch} i — the picker occupancy of this cycle."""
        return sum(item.processing_time for item in self.batch)

    @property
    def n_items(self) -> int:
        """Number of items fulfilled by this cycle."""
        return len(self.batch)

    def enter(self, stage: MissionStage, t: Tick,
              path: Optional[Path] = None) -> None:
        """Transition to ``stage`` at tick ``t`` with an optional new leg."""
        _require_legal_transition(self.stage, stage)
        self.stage = stage
        self.stage_entered_at = t
        self.path = path

    def resume(self, t: Tick, path: Path) -> None:
        """Continue the *current* moving stage on a fresh leg.

        The horizon-replan case: the previous leg was partial (a windowed
        prefix or a wait-in-place) and ended short of the stage's target,
        so the planner supplied a continuation from where the robot
        stands.  The stage — and ``stage_entered_at``, which feeds the
        Fig. 13 stage-duration accounting — is deliberately unchanged:
        the robot never left the stage, it just swapped legs.
        """
        if not self.stage.moving:
            raise SimulationError(
                f"cannot resume non-moving stage {self.stage.value} "
                f"(rack {self.rack_id})")
        if self.path is None or path.source != self.path.goal \
                or path.start_time != t:
            raise SimulationError(
                f"continuation leg mismatch for rack {self.rack_id}: "
                f"previous leg ends {self.path.goal if self.path else None}"
                f"@{self.path.end_time if self.path else None}, "
                f"continuation starts {path.source}@{path.start_time} "
                f"(expected t={t})")
        self.path = path


_LEGAL = {
    MissionStage.TO_RACK: (MissionStage.TO_PICKER,),
    MissionStage.TO_PICKER: (MissionStage.QUEUING,),
    MissionStage.QUEUING: (MissionStage.PROCESSING,),
    MissionStage.PROCESSING: (MissionStage.RETURNING,),
    MissionStage.RETURNING: (MissionStage.DONE,),
    MissionStage.DONE: (),
}


def _require_legal_transition(current: MissionStage,
                              target: MissionStage) -> None:
    if target not in _LEGAL[current]:
        raise SimulationError(
            f"illegal mission transition {current.value} -> {target.value}")
