"""Checkpoint/restore of a live simulation (service mode).

A checkpoint captures a :class:`~repro.sim.engine.Simulation` mid-run —
the event calendar, every robot/picker/rack entity, live reservations,
the metrics recorder, the bottleneck trace, and the planner including its
RNG and learner state — so an open-ended run can stop and resume exactly
where it was.  Restore is *bit-identical*: draining a restored run
produces the same :func:`~repro.sim.serialize.deterministic_view` as the
uninterrupted run (the checkpoint round-trip tests pin this for all five
planners).

The payload is a versioned envelope around a pickle of the simulation
object graph.  Pickle (not JSON) because the point is to resurrect live
heaps, shared :class:`~repro.sim.missions.Mission` references and RNG
state, none of which have a faithful JSON form; the envelope's plain
header (magic, version, clock, planner, counts) is readable without
unpickling so stale or foreign files fail fast with a
:class:`~repro.errors.CheckpointError` instead of an unpickling crash.
The planner-side contract — which structures are dropped and rebuilt
instead of pickled — lives in ``Planner.__getstate__``
(:mod:`repro.planners.base`).

Only trust checkpoints you produced: the body is a pickle, with pickle's
usual code-execution caveat for hostile files.
"""

from __future__ import annotations

import io
import os
import pickle
import platform
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..errors import CheckpointError
from .engine import Simulation

#: First bytes of every checkpoint file (version-independent).
CHECKPOINT_MAGIC = b"repro-checkpoint"

#: Bump on any change to the envelope layout or to the pickled object
#: graph that an older reader could misinterpret; restore refuses other
#: versions outright rather than guessing.
CHECKPOINT_VERSION = 1

#: Pickle protocol pinned explicitly so checkpoints written on newer
#: interpreters stay readable on the oldest supported one.
_PICKLE_PROTOCOL = 4


def checkpoint_header(sim: Simulation,
                      extra: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Any]:
    """The plain-data header describing one checkpoint."""
    return {
        "version": CHECKPOINT_VERSION,
        "tick": sim.tick,
        "planner": sim.planner.name,
        "items_total": sim.items_total,
        "items_processed": sim.items_processed,
        "events_processed": sim.events_processed,
        "python": platform.python_version(),
        "has_extra": extra is not None,
    }


def dump_checkpoint(sim: Simulation,
                    extra: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialise ``sim`` (plus optional harness state) to bytes.

    ``extra`` carries picklable harness-side state that must survive
    alongside the engine — the soak loop stores its arrival stream and
    feed cursor there, so a restored soak replays the exact item
    sequence the uninterrupted run saw.
    """
    buffer = io.BytesIO()
    buffer.write(CHECKPOINT_MAGIC)
    pickler = pickle.Pickler(buffer, protocol=_PICKLE_PROTOCOL)
    pickler.dump(checkpoint_header(sim, extra))
    pickler.dump((sim, extra))
    return buffer.getvalue()


def load_checkpoint_bytes(blob: bytes
                          ) -> Tuple[Simulation, Optional[Dict[str, Any]]]:
    """Rebuild ``(simulation, extra)`` from :func:`dump_checkpoint` bytes."""
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(
            "not a repro checkpoint (missing envelope magic)")
    buffer = io.BytesIO(blob[len(CHECKPOINT_MAGIC):])
    unpickler = pickle.Unpickler(buffer)
    try:
        header = unpickler.load()
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint header is unreadable: {exc}") from exc
    version = header.get("version") if isinstance(header, dict) else None
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})")
    sim, extra = unpickler.load()
    if not isinstance(sim, Simulation):
        raise CheckpointError(
            f"checkpoint body holds {type(sim).__name__}, not a Simulation")
    return sim, extra


def read_checkpoint_header(path: os.PathLike) -> Dict[str, Any]:
    """Read only the plain header of a checkpoint file (cheap probe)."""
    with Path(path).open("rb") as fh:
        magic = fh.read(len(CHECKPOINT_MAGIC))
        if magic != CHECKPOINT_MAGIC:
            raise CheckpointError(
                f"{path}: not a repro checkpoint (missing envelope magic)")
        header = pickle.Unpickler(fh).load()
    if not isinstance(header, dict) or "version" not in header:
        raise CheckpointError(f"{path}: malformed checkpoint header")
    return header


def save_checkpoint(sim: Simulation, path: os.PathLike,
                    extra: Optional[Dict[str, Any]] = None) -> Path:
    """Atomically write a checkpoint file; returns its path.

    Same temp-file + ``os.replace`` discipline as the result store, so a
    crash mid-write never leaves a half-checkpoint a restart would trust.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(dump_checkpoint(sim, extra))
    os.replace(tmp, target)
    return target


def load_checkpoint(path: os.PathLike
                    ) -> Tuple[Simulation, Optional[Dict[str, Any]]]:
    """Restore ``(simulation, extra)`` from a checkpoint file."""
    return load_checkpoint_bytes(Path(path).read_bytes())
