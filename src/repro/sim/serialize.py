"""Serialisation of :class:`~repro.sim.engine.SimulationResult` to JSON.

Two consumers share this layer: the parallel experiment matrix (worker
processes return plain dicts that the parent streams into per-cell JSON
files) and the golden-trace regression suite (small results frozen under
``tests/golden/`` and diffed field by field).

Wall-clock fields (``selection_seconds`` / ``planning_seconds``) are
*measurements*, not functions of the seed, so they can never be
bit-identical across runs or processes.  :func:`deterministic_view` strips
them recursively; everything else — makespan, rates, memory, the
bottleneck trace, the mission order — is reproducible from a scenario
spec's seeds and compares exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .engine import SimulationResult
from .metrics import (BATCH_KEYS, FALLBACK_KEYS, FASTPATH_KEYS,
                      CheckpointSample, RunMetrics, WindowSample)
from .trace import BottleneckTrace

#: Keys holding wall-clock measurements, excluded from exact comparisons.
TIMING_KEYS = frozenset({"selection_seconds", "planning_seconds", "wall_s"})


def metrics_to_dict(metrics: RunMetrics) -> Dict[str, Any]:
    """Serialise final metrics plus the checkpoint series."""
    return {
        "makespan": metrics.makespan,
        "items_processed": metrics.items_processed,
        "missions_completed": metrics.missions_completed,
        "ppr": metrics.ppr,
        "rwr": metrics.rwr,
        "selection_seconds": metrics.selection_seconds,
        "planning_seconds": metrics.planning_seconds,
        "peak_memory_bytes": metrics.peak_memory_bytes,
        # Normalised (every key present, absent dict reads all-zero) so
        # payloads from the frozen legacy engine — which predates the
        # windowed pipeline and never sets the counters — compare equal
        # to an event-engine run that needed no fallbacks.
        "fallback": metrics.fallback_view(),
        # Tier-0 fast-path counters, same normalisation contract; both
        # engines thread them from the live planner stats, so legacy-vs-
        # event equivalence comparisons see identical values.
        "fastpath": metrics.fastpath_view(),
        # Batched-wake counters, same normalisation contract (all-zero on
        # every run below the paper-scale gate and on stored payloads
        # that predate batching).
        "batch": metrics.batch_view(),
        "checkpoints": [
            {"items_processed": c.items_processed, "tick": c.tick,
             "ppr": c.ppr, "rwr": c.rwr,
             "selection_seconds": c.selection_seconds,
             "planning_seconds": c.planning_seconds,
             "memory_bytes": c.memory_bytes}
            for c in metrics.checkpoints],
    }


def trace_to_dict(trace: Optional[BottleneckTrace]
                  ) -> Optional[List[Dict[str, int]]]:
    """Serialise the bottleneck trace as a list of per-tick samples."""
    if trace is None:
        return None
    return [
        {"tick": s.tick, "transporting": s.transporting,
         "queuing": s.queuing, "processing": s.processing,
         "cum_transport": s.cum_transport, "cum_queuing": s.cum_queuing,
         "cum_processing": s.cum_processing}
        for s in trace.samples]


def trace_from_dict(samples: List[Dict[str, int]]) -> BottleneckTrace:
    """Rebuild a :class:`BottleneckTrace` from its serialised samples."""
    trace = BottleneckTrace()
    for sample in samples:
        trace.record(tick=sample["tick"],
                     transporting=sample["transporting"],
                     queuing=sample["queuing"],
                     processing=sample["processing"])
    return trace


def window_to_dict(sample: WindowSample) -> Dict[str, Any]:
    """Serialise one steady-state window (service-mode telemetry)."""
    return {
        "window_start": sample.window_start,
        "window_end": sample.window_end,
        "items_processed": sample.items_processed,
        "legs_planned": sample.legs_planned,
        "ppr": sample.ppr,
        "rwr": sample.rwr,
        "items_per_tick": sample.items_per_tick,
        "legs_per_tick": sample.legs_per_tick,
        "memory_bytes": sample.memory_bytes,
    }


def window_from_dict(payload: Dict[str, Any]) -> WindowSample:
    """Rebuild a :class:`WindowSample` from :func:`window_to_dict` output."""
    return WindowSample(**payload)


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Serialise one run: metrics, trace, and the completed mission order.

    Missions record the fields that make the run's *logic* auditable
    (which robot fulfilled which rack with which items, and when) — not
    the per-leg paths, which would dwarf the payload.
    """
    return {
        "planner": result.planner_name,
        "metrics": metrics_to_dict(result.metrics),
        "trace": trace_to_dict(result.trace),
        "missions": [
            {"robot_id": m.robot_id, "rack_id": m.rack_id,
             "item_ids": [item.item_id for item in m.batch],
             "dispatched_at": m.dispatched_at}
            for m in result.missions],
    }


def metrics_from_dict(payload: Dict[str, Any]) -> RunMetrics:
    """Rebuild :class:`RunMetrics` from :func:`metrics_to_dict` output."""
    return RunMetrics(
        makespan=payload["makespan"],
        items_processed=payload["items_processed"],
        missions_completed=payload["missions_completed"],
        ppr=payload["ppr"],
        rwr=payload["rwr"],
        selection_seconds=payload["selection_seconds"],
        planning_seconds=payload["planning_seconds"],
        peak_memory_bytes=payload["peak_memory_bytes"],
        checkpoints=[CheckpointSample(**c) for c in payload["checkpoints"]],
        fallback={key: payload.get("fallback", {}).get(key, 0)
                  for key in FALLBACK_KEYS},
        fastpath={key: payload.get("fastpath", {}).get(key, 0)
                  for key in FASTPATH_KEYS},
        batch={key: payload.get("batch", {}).get(key, 0)
               for key in BATCH_KEYS})


def deterministic_view(payload: Any) -> Any:
    """Copy of ``payload`` with wall-clock keys removed, recursively.

    Two runs of the same (scenario, planner, config) cell — serial or in a
    worker process — produce identical deterministic views; only the
    timing measurements differ.
    """
    if isinstance(payload, dict):
        return {k: deterministic_view(v) for k, v in payload.items()
                if k not in TIMING_KEYS}
    if isinstance(payload, list):
        return [deterministic_view(v) for v in payload]
    return payload
