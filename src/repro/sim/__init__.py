"""The validation system: simulator, missions, queueing, metrics, trace."""

from .engine import Simulation, SimulationResult
from .metrics import (CheckpointSample, MetricsRecorder, RunMetrics,
                      picker_processing_rate, robot_working_rate)
from .missions import Mission, MissionStage
from .queueing import ProcessingCompletion, enqueue_rack, process_picker_tick
from .serialize import (deterministic_view, metrics_from_dict,
                        metrics_to_dict, result_to_dict, trace_from_dict,
                        trace_to_dict)
from .trace import BottleneckSample, BottleneckTrace

__all__ = [
    "BottleneckSample",
    "BottleneckTrace",
    "CheckpointSample",
    "MetricsRecorder",
    "Mission",
    "MissionStage",
    "ProcessingCompletion",
    "RunMetrics",
    "Simulation",
    "SimulationResult",
    "deterministic_view",
    "enqueue_rack",
    "metrics_from_dict",
    "metrics_to_dict",
    "picker_processing_rate",
    "process_picker_tick",
    "result_to_dict",
    "robot_working_rate",
    "trace_from_dict",
    "trace_to_dict",
]
