"""The validation system: simulator, missions, queueing, metrics, trace."""

from .engine import Simulation, SimulationResult
from .metrics import (CheckpointSample, MetricsRecorder, RunMetrics,
                      picker_processing_rate, robot_working_rate)
from .missions import Mission, MissionStage
from .queueing import ProcessingCompletion, enqueue_rack, process_picker_tick
from .trace import BottleneckSample, BottleneckTrace

__all__ = [
    "BottleneckSample",
    "BottleneckTrace",
    "CheckpointSample",
    "MetricsRecorder",
    "Mission",
    "MissionStage",
    "ProcessingCompletion",
    "RunMetrics",
    "Simulation",
    "SimulationResult",
    "enqueue_rack",
    "picker_processing_rate",
    "process_picker_tick",
    "robot_working_rate",
]
