"""Record/replay planners: drive the engine on a pre-computed decision log.

The engine benchmarks (``bench_engine`` in ``scripts/bench_kernels.py``)
need to time the *simulation core* — calendar management, motion, FCFS
queueing, span accounting — without the planner's selection and search
cost drowning the measurement: on the fleet-ladder floors spatiotemporal
A* is ~3/4 of end-to-end wall-clock and is byte-identical work in both
engine generations.  The harness here runs one live planner once through
:class:`RecordingPlanner`, freezing every scheme and leg it emitted, then
replays that log through :class:`ReplayPlanner` against fresh worlds — so
a legacy-vs-event comparison is two engines executing the *identical*
mission stream with near-zero planner cost.

Replay is also a determinism witness: a replayed run must reproduce the
recorded run's deterministic view exactly (modulo the memory metric,
which a replay reports as zero), and the test suite holds it to that.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

from ..errors import SimulationError
from ..pathfinding.paths import Path
from ..planners.base import Planner, PlannerStats
from ..planners.scheme import PlanningScheme
from ..types import Cell, Tick
from ..warehouse.state import WarehouseState

#: One leg-planning call site: (start tick, source, goal).
LegKey = Tuple[Tick, Cell, Cell]


@dataclass
class ReplayLog:
    """Every decision a planner made during one recorded run."""

    planner_name: str = "replay"
    #: Planning scheme emitted at each tick ``plan`` was invoked.
    schemes: Dict[Tick, PlanningScheme] = field(default_factory=dict)
    #: Legs planned per call site, in call order (FIFO within a key).
    legs: Dict[LegKey, List[Path]] = field(default_factory=dict)

    @property
    def n_legs(self) -> int:
        return sum(len(paths) for paths in self.legs.values())


class RecordingPlanner:
    """Transparent proxy that logs an inner planner's emissions.

    Satisfies the engine's planner contract by delegation; the inner
    planner behaves exactly as if driven directly.
    """

    def __init__(self, inner: Planner) -> None:
        self._inner = inner
        self.log = ReplayLog(planner_name=inner.name)

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def state(self) -> WarehouseState:
        return self._inner.state

    @property
    def stats(self) -> PlannerStats:
        return self._inner.stats

    def memory_bytes(self) -> int:
        return self._inner.memory_bytes()

    @property
    def peak_memory_bytes(self) -> int:
        return getattr(self._inner, "peak_memory_bytes", 0)

    def plan(self, t: Tick) -> PlanningScheme:
        scheme = self._inner.plan(t)
        self.log.schemes[t] = scheme
        return scheme

    def plan_leg(self, t: Tick, source: Cell, goal: Cell) -> Path:
        path = self._inner.plan_leg(t, source, goal)
        self.log.legs.setdefault((t, source, goal), []).append(path)
        return path

    def continue_leg(self, t: Tick, source: Cell, goal: Cell) -> Path:
        path = self._inner.continue_leg(t, source, goal)
        self.log.legs.setdefault((t, source, goal), []).append(path)
        return path

    def advance(self, t_from: Tick, t_to: Tick) -> None:
        self._inner.advance(t_from, t_to)

    def end_of_tick(self, t: Tick) -> None:
        self._inner.end_of_tick(t)


class ReplayPlanner:
    """Replays a :class:`ReplayLog` against a fresh world.

    Single-use: each leg is consumed as it is requested, so construct one
    replay planner per run.  A request the log cannot answer means the
    replayed world diverged from the recorded one — that raises
    immediately rather than silently desynchronising.
    """

    def __init__(self, state: WarehouseState, log: ReplayLog) -> None:
        self.state = state
        self.log = log
        self.name = log.planner_name
        self.stats = PlannerStats()
        self._legs: Dict[LegKey, Deque[Path]] = {
            key: deque(paths) for key, paths in log.legs.items()}

    def memory_bytes(self) -> int:
        return 0

    #: Replays carry no reservation structures, so the recorded peak is
    #: deliberately not replayed either — the memory metric reads zero,
    #: matching :meth:`memory_bytes` (the deterministic-view comparison
    #: already excludes it).
    peak_memory_bytes = 0

    def plan(self, t: Tick) -> PlanningScheme:
        scheme = self.log.schemes.get(t)
        if scheme is None:
            # The recorded run had nothing to dispatch at this tick (the
            # live planner's side-effect-free early return).
            return PlanningScheme(timestamp=t)
        self.stats.schemes_emitted += 1
        self.stats.assignments_emitted += len(scheme)
        return scheme

    def plan_leg(self, t: Tick, source: Cell, goal: Cell) -> Path:
        queue = self._legs.get((t, source, goal))
        if not queue:
            raise SimulationError(
                f"replay diverged: no recorded leg for t={t} "
                f"{source} -> {goal}")
        self.stats.legs_planned += 1
        return queue.popleft()

    def continue_leg(self, t: Tick, source: Cell, goal: Cell) -> Path:
        """Horizon replans replay from the same recorded leg queues."""
        self.stats.horizon_replans += 1
        return self.plan_leg(t, source, goal)

    def advance(self, t_from: Tick, t_to: Tick) -> None:
        """No reservation structure to purge during replay."""

    def end_of_tick(self, t: Tick) -> None:
        self.advance(t, t)
