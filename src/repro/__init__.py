"""repro — a reproduction of "Adaptive Task Planning for Large-Scale
Robotized Warehouses" (Shi et al., ICDE 2022).

The package implements the TPRW problem end to end: the rack-to-picker
warehouse substrate, conflict-free multi-agent path finding, the
reinforcement-learning rack selector, the paper's five planners
(NTP, LEF, ILP, ATP, EATP), the discrete-time validation system, the
Table II workloads, and the experiment harness regenerating every table
and figure of the evaluation section.

Quickstart::

    from repro import EfficientAdaptiveTaskPlanner, Simulation, make_syn_a

    scenario = make_syn_a(scale=0.25)
    state, items = scenario.build()
    planner = EfficientAdaptiveTaskPlanner(state)
    result = Simulation(state, planner, items).run()
    print(result.metrics.makespan)
"""

from .config import PlannerConfig, QLearningConfig, SimulationConfig
from .errors import (ConfigurationError, ConflictError, InvalidLocationError,
                     LayoutError, PathNotFoundError, PlanningError,
                     ReproError, SimulationError)
from .planners import (PLANNERS, AdaptiveTaskPlanner, Assignment,
                       EfficientAdaptiveTaskPlanner, IlpPlanner,
                       LeastExpirationFirstPlanner, NaiveTaskPlanner,
                       Planner, PlanningScheme)
from .sim import (BottleneckTrace, Mission, MissionStage, RunMetrics,
                  Simulation, SimulationResult)
from .warehouse import (Grid, Item, Picker, Rack, RackPhase, Robot,
                        RobotState, WarehouseLayout, WarehouseState,
                        build_layout)
from .workloads import (ItemStreamSpec, ObstructionSpec, SCENARIO_FAMILIES,
                        ScenarioSpec, all_datasets, make_mini,
                        make_real_large, make_real_norm, make_syn_a,
                        make_syn_b, poisson_arrivals, scenario_family,
                        surge_arrivals)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveTaskPlanner",
    "Assignment",
    "BottleneckTrace",
    "ConfigurationError",
    "ConflictError",
    "EfficientAdaptiveTaskPlanner",
    "Grid",
    "IlpPlanner",
    "InvalidLocationError",
    "Item",
    "ItemStreamSpec",
    "LayoutError",
    "LeastExpirationFirstPlanner",
    "Mission",
    "MissionStage",
    "NaiveTaskPlanner",
    "ObstructionSpec",
    "PLANNERS",
    "PathNotFoundError",
    "Picker",
    "Planner",
    "PlannerConfig",
    "PlanningError",
    "PlanningScheme",
    "QLearningConfig",
    "Rack",
    "RackPhase",
    "ReproError",
    "Robot",
    "RobotState",
    "RunMetrics",
    "SCENARIO_FAMILIES",
    "ScenarioSpec",
    "Simulation",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "WarehouseLayout",
    "WarehouseState",
    "all_datasets",
    "build_layout",
    "make_mini",
    "make_real_large",
    "make_real_norm",
    "make_syn_a",
    "make_syn_b",
    "poisson_arrivals",
    "scenario_family",
    "surge_arrivals",
    "__version__",
]
